/**
 * @file
 * Fixed-point RGB <-> YCbCr conversion and 4:2:0 chroma resampling.
 *
 * Constants are exported so the traced code paths (scalar and VIS) use
 * the same arithmetic as the native reference.
 */

#ifndef MSIM_JPEG_COLOR_HH_
#define MSIM_JPEG_COLOR_HH_

#include <vector>

#include "common/saturate.hh"
#include "img/image.hh"

namespace msim::jpeg
{

/** 8-bit fixed-point forward color constants (x256). */
constexpr int kYR = 77, kYG = 150, kYB = 29;
constexpr int kCbR = -43, kCbG = -85, kCbB = 128;
constexpr int kCrR = 128, kCrG = -107, kCrB = -21;

/** 8-bit fixed-point inverse constants (x256). */
constexpr int kRCr = 359, kGCb = 88, kGCr = 183, kBCb = 454;

/** One 8-bit sample plane with row-major layout. */
struct Plane
{
    unsigned w = 0;
    unsigned h = 0;
    std::vector<u8> samples;

    Plane() = default;
    Plane(unsigned w, unsigned h) : w(w), h(h), samples(size_t{w} * h, 0) {}

    u8 &at(unsigned x, unsigned y) { return samples[size_t{y} * w + x]; }
    u8 at(unsigned x, unsigned y) const { return samples[size_t{y} * w + x]; }
};

/** Y/Cb/Cr triple in 4:2:0 layout (chroma at half resolution). */
struct Ycc420
{
    Plane y, cb, cr;
};

/** Forward conversion of one pixel. */
constexpr u8
yOf(int r, int g, int b)
{
    return satU8((kYR * r + kYG * g + kYB * b) >> 8);
}

constexpr u8
cbOf(int r, int g, int b)
{
    return satU8(((kCbR * r + kCbG * g + kCbB * b) >> 8) + 128);
}

constexpr u8
crOf(int r, int g, int b)
{
    return satU8(((kCrR * r + kCrG * g + kCrB * b) >> 8) + 128);
}

/** Inverse conversion of one pixel. */
constexpr u8
rOf(int y, int cr)
{
    return satU8(y + ((kRCr * (cr - 128)) >> 8));
}

constexpr u8
gOf(int y, int cb, int cr)
{
    return satU8(y - ((kGCb * (cb - 128) + kGCr * (cr - 128)) >> 8));
}

constexpr u8
bOf(int y, int cb)
{
    return satU8(y + ((kBCb * (cb - 128)) >> 8));
}

/** RGB image -> 4:2:0 YCbCr (chroma box-filtered 2x2). */
Ycc420 rgbToYcc420(const img::Image &rgb);

/** 4:2:0 YCbCr -> RGB image (chroma replicated 2x2). */
img::Image ycc420ToRgb(const Ycc420 &ycc, unsigned width, unsigned height);

/** Pad a plane to multiples of 8 in both dimensions (edge replication). */
Plane padToBlocks(const Plane &p);

} // namespace msim::jpeg

#endif // MSIM_JPEG_COLOR_HH_
