#include "jpeg/zigzag.hh"

namespace msim::jpeg
{

namespace
{

/** Generate the classic zig-zag traversal of an 8x8 grid. */
std::array<u8, 64>
makeZigzag()
{
    std::array<u8, 64> z{};
    int x = 0, y = 0;
    bool up = true;
    for (int i = 0; i < 64; ++i) {
        z[i] = static_cast<u8>(y * 8 + x);
        if (up) {
            if (x == 7) {
                ++y;
                up = false;
            } else if (y == 0) {
                ++x;
                up = false;
            } else {
                ++x;
                --y;
            }
        } else {
            if (y == 7) {
                ++x;
                up = true;
            } else if (x == 0) {
                ++y;
                up = true;
            } else {
                --x;
                ++y;
            }
        }
    }
    return z;
}

std::array<u8, 64>
makeUnzigzag(const std::array<u8, 64> &z)
{
    std::array<u8, 64> u{};
    for (int i = 0; i < 64; ++i)
        u[z[i]] = static_cast<u8>(i);
    return u;
}

} // namespace

const std::array<u8, 64> kZigzag = makeZigzag();
const std::array<u8, 64> kUnzigzag = makeUnzigzag(kZigzag);

void
toZigzag(const s16 in[64], s16 out[64])
{
    for (int i = 0; i < 64; ++i)
        out[i] = in[kZigzag[i]];
}

void
fromZigzag(const s16 in[64], s16 out[64])
{
    for (int i = 0; i < 64; ++i)
        out[kZigzag[i]] = in[i];
}

} // namespace msim::jpeg
