#include "jpeg/color.hh"

#include "common/bits.hh"
#include "common/logging.hh"

namespace msim::jpeg
{

Ycc420
rgbToYcc420(const img::Image &rgb)
{
    if (rgb.bands() != 3)
        fatal("rgbToYcc420: need a 3-band image, got %u bands",
              rgb.bands());
    const unsigned w = rgb.width();
    const unsigned h = rgb.height();
    if (w % 2 || h % 2)
        fatal("rgbToYcc420: dimensions must be even (%ux%u)", w, h);

    Ycc420 out;
    out.y = Plane(w, h);
    out.cb = Plane(w / 2, h / 2);
    out.cr = Plane(w / 2, h / 2);

    // Full-resolution luma plus full-resolution chroma scratch.
    Plane cb_full(w, h), cr_full(w, h);
    for (unsigned y = 0; y < h; ++y) {
        for (unsigned x = 0; x < w; ++x) {
            const int r = rgb.at(x, y, 0);
            const int g = rgb.at(x, y, 1);
            const int b = rgb.at(x, y, 2);
            out.y.at(x, y) = yOf(r, g, b);
            cb_full.at(x, y) = cbOf(r, g, b);
            cr_full.at(x, y) = crOf(r, g, b);
        }
    }
    // 2x2 box decimation.
    for (unsigned y = 0; y < h / 2; ++y) {
        for (unsigned x = 0; x < w / 2; ++x) {
            const auto avg = [&](const Plane &p) {
                const unsigned s = p.at(2 * x, 2 * y) +
                                   p.at(2 * x + 1, 2 * y) +
                                   p.at(2 * x, 2 * y + 1) +
                                   p.at(2 * x + 1, 2 * y + 1);
                return static_cast<u8>((s + 2) >> 2);
            };
            out.cb.at(x, y) = avg(cb_full);
            out.cr.at(x, y) = avg(cr_full);
        }
    }
    return out;
}

img::Image
ycc420ToRgb(const Ycc420 &ycc, unsigned width, unsigned height)
{
    img::Image rgb(width, height, 3);
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            const int yy = ycc.y.at(x, y);
            const int cb = ycc.cb.at(x / 2, y / 2);
            const int cr = ycc.cr.at(x / 2, y / 2);
            rgb.at(x, y, 0) = rOf(yy, cr);
            rgb.at(x, y, 1) = gOf(yy, cb, cr);
            rgb.at(x, y, 2) = bOf(yy, cb);
        }
    }
    return rgb;
}

Plane
padToBlocks(const Plane &p)
{
    const unsigned w = static_cast<unsigned>(roundUp(p.w, 8));
    const unsigned h = static_cast<unsigned>(roundUp(p.h, 8));
    if (w == p.w && h == p.h)
        return p;
    Plane out(w, h);
    for (unsigned y = 0; y < h; ++y) {
        const unsigned sy = y < p.h ? y : p.h - 1;
        for (unsigned x = 0; x < w; ++x) {
            const unsigned sx = x < p.w ? x : p.w - 1;
            out.at(x, y) = p.at(sx, sy);
        }
    }
    return out;
}

} // namespace msim::jpeg
