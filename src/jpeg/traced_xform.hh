/**
 * @file
 * Trace-emitting building blocks shared by the JPEG and MPEG2 traced
 * benchmarks: arena-resident tables, bit I/O, the block transform
 * pipeline (level shift + DCT + quant + zig-zag and its inverse), and
 * Huffman symbol emission/decoding.
 *
 * Scalar emission reproduces the native reference arithmetic bit-for-
 * bit. The VIS paths vectorize the DCT column passes, the final
 * saturation, and (in the callers) color conversion; the row passes,
 * quantization, zig-zag gather, and all entropy coding remain scalar —
 * matching the paper's observations about where VIS is inapplicable
 * (sequential variable-length coding, scatter-gather addressing,
 * quantization).
 */

#ifndef MSIM_JPEG_TRACED_XFORM_HH_
#define MSIM_JPEG_TRACED_XFORM_HH_

#include <vector>

#include "jpeg/codec.hh"
#include "prog/trace_builder.hh"
#include "prog/variant.hh"

namespace msim::jpeg
{

using prog::TraceBuilder;
using prog::Val;
using prog::Variant;

/** Pack the same 16-bit value into all four lanes of a 64-bit constant. */
u64 lanesOf16(s16 v);

/**
 * VIS 16-bit-by-constant multiply: the 3-op fmul8sux16/fmul8ulx16/
 * fpadd16 emulation computing (x * c) >> 8 per lane.
 */
Val visMul3(TraceBuilder &tb, Val x, Val cvec);

/** Arena images of the small lookup tables the codec loads from. */
class TracedTables
{
  public:
    TracedTables(TraceBuilder &tb, const QuantTable &luma,
                 const QuantTable &chroma);

    Addr zigzagAddr() const { return zigzag; }

    /** Entry layout: recip u32 @0, half u16 @4, q u16 @6 (8 bytes). */
    Addr quantEntry(bool chroma, unsigned i) const
    {
        return (chroma ? qChroma : qLuma) + 8 * i;
    }

    const QuantTable &table(bool chroma) const
    {
        return chroma ? chromaT : lumaT;
    }

    /** Scratch staging buffers used by the VIS block pipeline. */
    Addr scratchA() const { return scratch_a; }
    Addr scratchB() const { return scratch_b; }

  private:
    Addr zigzag = 0;
    Addr qLuma = 0;
    Addr qChroma = 0;
    Addr scratch_a = 0;
    Addr scratch_b = 0;
    QuantTable lumaT{};
    QuantTable chromaT{};
};

/**
 * Bit writer that emits realistic shift/or/flush instruction sequences
 * and stores the produced bytes into the arena.
 */
class TracedBitWriter
{
  public:
    /** @param capacity  Arena bytes reserved at @p base. */
    TracedBitWriter(TraceBuilder &tb, Addr base, size_t capacity);

    void put(u32 code, unsigned len);

    /** Pad to a byte boundary; returns the total byte count. */
    size_t finish();

    Addr base() const { return base_; }

  private:
    void flushBytes();

    TraceBuilder &tb;
    Addr base_;
    size_t capacity;
    size_t pos = 0;
    u32 acc = 0;
    unsigned nbits = 0;
    Val accVal;
};

/**
 * Arena image of a HuffTable: encode entries (code,len) and the
 * canonical decode tables (mincode/maxcode/valptr/vals).
 */
class TracedHuff
{
  public:
    TracedHuff(TraceBuilder &tb, const HuffTable &table);

    const HuffTable &table() const { return *table_; }

    /** Emit the encode-side ops for one symbol into @p bw. */
    void emitEncode(TraceBuilder &tb, TracedBitWriter &bw,
                    unsigned sym) const;

    Addr encodeEntry(unsigned sym) const { return enc + 4 * sym; }

  private:
    friend class TracedBitReader;

    const HuffTable *table_;
    Addr enc = 0;     ///< per symbol: code u16, len u16
    Addr mincode = 0; ///< s32[17]
    Addr maxcode = 0; ///< s32[17]
    Addr valptr = 0;  ///< u16[17]
    Addr vals = 0;    ///< u16[]
};

/**
 * Bit reader mirroring a native BitReader: the host decodes
 * authoritatively while realistic load/shift/compare ops are emitted,
 * including the byte-refill loads from the arena-resident stream.
 */
class TracedBitReader
{
  public:
    /** The stream bytes are uploaded to the arena at @p base. */
    TracedBitReader(TraceBuilder &tb, const std::vector<u8> &bits,
                    Addr base);

    /** Decode one symbol through @p huff, emitting the canonical walk. */
    unsigned decodeSym(const TracedHuff &huff);

    /** Read @p n magnitude bits. */
    u32 getBits(unsigned n);

    bool exhausted() const { return reader.exhausted(); }

  private:
    void consumeBits(unsigned n);

    TraceBuilder &tb;
    Addr base;
    BitReader reader;
    size_t bits_consumed = 0;
    Val accVal;
};

/**
 * Emit one block of the forward pipeline: load 8x8 samples at @p src
 * (row stride @p stride), level-shift, DCT, quantize, zig-zag, store 64
 * s16 at @p dst. Returns nothing; all results live in the arena.
 */
void emitFdctQuantBlock(TraceBuilder &tb, Variant variant,
                        const TracedTables &tables, bool chroma, Addr src,
                        unsigned stride, Addr dst);

/**
 * Emit one block of the inverse pipeline: load 64 zig-zag s16 at
 * @p src, dequantize, IDCT, level-unshift with saturation, store 8x8
 * samples at @p dst.
 *
 * @param residual  When true, skip the +128 level unshift and store
 *                  signed 16-bit residuals instead of u8 samples (MPEG
 *                  motion-compensated blocks add these to a prediction).
 */
void emitIdctBlock(TraceBuilder &tb, Variant variant,
                   const TracedTables &tables, bool chroma, Addr src,
                   Addr dst, unsigned stride, bool residual = false);

/**
 * Forward-transform one block of *signed 16-bit residuals* (stride in
 * elements) instead of u8 samples: no level shift (MPEG inter blocks).
 */
void emitFdctQuantResidual(TraceBuilder &tb, Variant variant,
                           const TracedTables &tables, bool chroma,
                           Addr src, unsigned stride, Addr dst);

/**
 * Emit the encode-side ops for one block band through @p bw.
 * @param zz       authoritative coefficients (read from the arena).
 * @param dc_pred  DC predictor, updated (pass 0-reset for inter blocks).
 */
void emitEncodeBlock(TraceBuilder &tb, TracedBitWriter &bw,
                     const TracedHuff &dc_h, const TracedHuff &ac_h,
                     Addr block_addr, const s16 *zz, int &dc_pred,
                     unsigned ss_start, unsigned ss_end);

/** Emit the statistics-pass ops for one block band (progressive JPEG). */
void emitStatsBlock(TraceBuilder &tb, Addr block_addr, const s16 *zz,
                    int &dc_pred, unsigned ss_start, unsigned ss_end,
                    Addr freq_table);

/** Emit the decode ops for one block band, storing into @p dst. */
void emitDecodeBlock(TraceBuilder &tb, TracedBitReader &br,
                     const TracedHuff &dc_h, const TracedHuff &ac_h,
                     int &dc_pred, unsigned ss_start, unsigned ss_end,
                     Addr dst);

/** Zero a 64-coefficient (128-byte) block buffer. */
void emitZeroBlock(TraceBuilder &tb, Variant variant, Addr dst);

} // namespace msim::jpeg

#endif // MSIM_JPEG_TRACED_XFORM_HH_
