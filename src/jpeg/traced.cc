#include "jpeg/traced.hh"

#include <vector>

#include "common/bits.hh"
#include "common/logging.hh"
#include "img/synth.hh"
#include "jpeg/codec.hh"
#include "jpeg/traced_xform.hh"
#include "jpeg/zigzag.hh"

namespace msim::jpeg
{

namespace
{

using prog::TraceBuilder;
using prog::Val;
using prog::Variant;

/** A padded plane living in the arena. */
struct PlaneBuf
{
    Addr base = 0;
    unsigned w = 0; ///< padded width (row stride)
    unsigned h = 0; ///< padded height
    unsigned usedW = 0;
    unsigned usedH = 0;
};

PlaneBuf
allocPlane(TraceBuilder &tb, unsigned used_w, unsigned used_h,
           const char *name)
{
    PlaneBuf p;
    p.usedW = used_w;
    p.usedH = used_h;
    p.w = static_cast<unsigned>(roundUp(used_w, 8));
    p.h = static_cast<unsigned>(roundUp(used_h, 8));
    p.base = tb.alloc(size_t{p.w} * p.h, name);
    return p;
}

/** Read a plane out of the arena into a native Plane. */
[[maybe_unused]] Plane
downloadPlane(const TraceBuilder &tb, const PlaneBuf &p)
{
    Plane out(p.w, p.h);
    tb.arena().readBytes(p.base, out.samples.data(), out.samples.size());
    return out;
}

/** Emit edge-replication of pad rows/columns (small scalar loops). */
void
emitPadPlane(TraceBuilder &tb, const PlaneBuf &p)
{
    const prog::ScopedSite site(tb, "jpg.pad");
    const u32 pc = tb.makePc("jpg.pad");
    unsigned count = 0;
    for (unsigned y = 0; y < p.h; ++y) {
        const unsigned sy = y < p.usedH ? y : p.usedH - 1;
        for (unsigned x = 0; x < p.w; ++x) {
            if (x < p.usedW && y < p.usedH)
                continue;
            const unsigned sx = x < p.usedW ? x : p.usedW - 1;
            Val v = tb.load(p.base + size_t{sy} * p.w + sx, 1);
            tb.store(p.base + size_t{y} * p.w + x, 1, v);
            tb.branch(pc, (++count & 3) != 0);
        }
    }
}

// --------------------------------------------------------------------
// Color conversion (forward: RGB -> YCC 4:2:0)
// --------------------------------------------------------------------

void
emitColorFwd(TraceBuilder &tb, Variant variant, Addr rgb, unsigned w,
             unsigned h, const PlaneBuf &py, const PlaneBuf &pcb,
             const PlaneBuf &pcr, Addr cb_tmp, Addr cr_tmp)
{
    const prog::ScopedSite site(tb, "jpg.color");
    const bool vis = variant != Variant::Scalar;
    const u32 loop_pc = tb.makePc("jpg.ccf");
    const Val k128 = tb.imm(128);

    if (!vis) {
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; ++x) {
                const Addr px = rgb + (size_t{y} * w + x) * 3;
                Val r = tb.load(px, 1);
                Val g = tb.load(px + 1, 1);
                Val b = tb.load(px + 2, 1);
                Val yv = tb.shr(
                    tb.add(tb.add(tb.mul(r, tb.imm(kYR)),
                                  tb.mul(g, tb.imm(kYG))),
                           tb.mul(b, tb.imm(kYB))),
                    8);
                tb.store(py.base + size_t{y} * py.w + x, 1, yv);
                Val cbv = tb.add(
                    tb.sra(tb.add(tb.add(tb.mul(r, tb.imm(u64(s64(kCbR)))),
                                         tb.mul(g, tb.imm(u64(s64(kCbG))))),
                                  tb.mul(b, tb.imm(kCbB))),
                           8),
                    k128);
                tb.store(cb_tmp + size_t{y} * w + x, 1, cbv);
                Val crv = tb.add(
                    tb.sra(tb.add(tb.add(tb.mul(r, tb.imm(kCrR)),
                                         tb.mul(g, tb.imm(u64(s64(kCrG))))),
                                  tb.mul(b, tb.imm(u64(s64(kCrB))))),
                           8),
                    k128);
                tb.store(cr_tmp + size_t{y} * w + x, 1, crv);
                tb.branch(loop_pc, x + 1 < w);
            }
        }
    } else {
        tb.setGsrScale(7);
        // Per 4 pixels: gather each component's 4 bytes from the
        // interleaved stream (the byte-reordering overhead the paper
        // attributes to VIS color conversion), then packed math.
        auto gather4 = [&](Addr base, unsigned stride_bytes) {
            Val v = tb.load(base, 1);
            for (unsigned k = 1; k < 4; ++k) {
                Val b = tb.load(base + k * stride_bytes, 1);
                v = tb.orOp(v, tb.shl(b, 8 * k));
            }
            return v;
        };
        const Val bias = tb.imm(lanesOf16(128));
        const bool pf = variant == Variant::VisPrefetch;
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; x += 4) {
                const Addr px = rgb + (size_t{y} * w + x) * 3;
                if (pf && (3 * x) % 64 < 12) {
                    tb.prefetch(px + 256);
                    tb.prefetch(py.base + size_t{y} * py.w + x + 256);
                }
                Val r4 = gather4(px, 3);
                Val g4 = gather4(px + 1, 3);
                Val b4 = gather4(px + 2, 3);

                auto cc3 = [&](int cr_, int cg_, int cb_) {
                    Val t = tb.vfmul8x16au(
                        r4, tb.imm(u64(u16(s16(cr_))) << 16));
                    t = tb.vfpadd16(t, tb.vfmul8x16au(
                        g4, tb.imm(u64(u16(s16(cg_))) << 16)));
                    t = tb.vfpadd16(t, tb.vfmul8x16au(
                        b4, tb.imm(u64(u16(s16(cb_))) << 16)));
                    return t;
                };
                Val y16 = cc3(kYR, kYG, kYB);
                tb.store(py.base + size_t{y} * py.w + x, 4,
                         tb.vfpack16(y16));
                Val cb16 = tb.vfpadd16(cc3(kCbR, kCbG, kCbB), bias);
                tb.store(cb_tmp + size_t{y} * w + x, 4, tb.vfpack16(cb16));
                Val cr16 = tb.vfpadd16(cc3(kCrR, kCrG, kCrB), bias);
                tb.store(cr_tmp + size_t{y} * w + x, 4, tb.vfpack16(cr16));
                tb.branch(loop_pc, x + 4 < w);
            }
        }
    }

    // Chroma decimation (scalar in both variants: data reordering).
    const u32 dec_pc = tb.makePc("jpg.dec");
    for (unsigned y = 0; y < h / 2; ++y) {
        for (unsigned x = 0; x < w / 2; ++x) {
            auto decim = [&](Addr src, const PlaneBuf &dst) {
                Val a = tb.load(src + size_t{2 * y} * w + 2 * x, 1);
                Val b = tb.load(src + size_t{2 * y} * w + 2 * x + 1, 1);
                Val c = tb.load(src + size_t{2 * y + 1} * w + 2 * x, 1);
                Val d = tb.load(src + size_t{2 * y + 1} * w + 2 * x + 1, 1);
                Val s = tb.add(tb.add(a, b), tb.add(c, d));
                Val v = tb.shr(tb.addi(s, 2), 2);
                tb.store(dst.base + size_t{y} * dst.w + x, 1, v);
            };
            decim(cb_tmp, pcb);
            decim(cr_tmp, pcr);
            tb.branch(dec_pc, x + 1 < w / 2);
        }
    }

    emitPadPlane(tb, py);
    emitPadPlane(tb, pcb);
    emitPadPlane(tb, pcr);
}

// --------------------------------------------------------------------
// Color conversion (inverse: YCC 4:2:0 -> RGB / RGBX)
// --------------------------------------------------------------------

void
emitColorInv(TraceBuilder &tb, Variant variant, const PlaneBuf &py,
             const PlaneBuf &pcb, const PlaneBuf &pcr, Addr out,
             unsigned w, unsigned h)
{
    const prog::ScopedSite site(tb, "jpg.color");
    const bool vis = variant != Variant::Scalar;
    const u32 loop_pc = tb.makePc("jpg.cci");
    const u32 clamp_pc = tb.sitePc("jpg.cciclamp");

    if (!vis) {
        // Scalar: interleaved 3-byte RGB output with clamp branches.
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; ++x) {
                Val yy = tb.load(py.base + size_t{y} * py.w + x, 1);
                Val cb = tb.load(pcb.base + size_t{y / 2} * pcb.w + x / 2,
                                 1);
                Val cr = tb.load(pcr.base + size_t{y / 2} * pcr.w + x / 2,
                                 1);
                Val dcb = tb.addi(cb, -128);
                Val dcr = tb.addi(cr, -128);
                auto clampStore = [&](Val v, Addr a) {
                    Val res = v;
                    const s64 s = v.s();
                    Val c_low = tb.cmpLt(v, tb.imm(0));
                    tb.branch(clamp_pc, s < 0, c_low);
                    if (s < 0) {
                        res = tb.imm(0);
                    } else {
                        Val c_hi = tb.cmpLt(tb.imm(255), v);
                        tb.branch(clamp_pc, s > 255, c_hi);
                        if (s > 255)
                            res = tb.imm(255);
                    }
                    tb.store(a, 1, res);
                };
                const Addr px = out + (size_t{y} * w + x) * 3;
                Val r = tb.add(yy, tb.sra(tb.mul(dcr, tb.imm(kRCr)), 8));
                clampStore(r, px);
                Val g = tb.sub(
                    yy, tb.sra(tb.add(tb.mul(dcb, tb.imm(kGCb)),
                                      tb.mul(dcr, tb.imm(kGCr))),
                               8));
                clampStore(g, px + 1);
                Val b = tb.add(yy, tb.sra(tb.mul(dcb, tb.imm(kBCb)), 8));
                clampStore(b, px + 2);
                tb.branch(loop_pc, x + 1 < w);
            }
        }
    } else {
        // VIS: 4 pixels at a time into RGBX (4-byte) output; saturation
        // via fpack16, interleave via fpmerge/faligndata.
        tb.setGsrScale(3); // values carried <<4
        const Val bias2048 = tb.imm(lanesOf16(128 << 4));
        const bool pf = variant == Variant::VisPrefetch;
        for (unsigned y = 0; y < h; ++y) {
            for (unsigned x = 0; x < w; x += 4) {
                if (pf && x % 64 < 4) {
                    tb.prefetch(py.base + size_t{y} * py.w + x + 256);
                    tb.prefetch(out + (size_t{y} * w + x) * 4 + 256);
                }
                Val y4 = tb.load(py.base + size_t{y} * py.w + x, 4);
                Val cb2 = tb.load(
                    pcb.base + size_t{y / 2} * pcb.w + x / 2, 2);
                Val cr2 = tb.load(
                    pcr.base + size_t{y / 2} * pcr.w + x / 2, 2);
                Val cb4 = tb.vfpmerge(cb2, cb2); // c0 c0 c1 c1
                Val cr4 = tb.vfpmerge(cr2, cr2);
                Val ey = tb.vfexpand(y4);
                Val dcb = tb.vfpsub16(tb.vfexpand(cb4), bias2048);
                Val dcr = tb.vfpsub16(tb.vfexpand(cr4), bias2048);

                auto cmul = [&](Val d, int c) {
                    Val cv = tb.imm(lanesOf16(static_cast<s16>(c)));
                    Val su = tb.vfmul8sux16(d, cv);
                    Val ul = tb.vfmul8ulx16(d, cv);
                    return tb.vfpadd16(su, ul);
                };
                Val r16 = tb.vfpadd16(ey, cmul(dcr, kRCr));
                Val g16 = tb.vfpsub16(
                    ey, tb.vfpadd16(cmul(dcb, kGCb), cmul(dcr, kGCr)));
                Val b16 = tb.vfpadd16(ey, cmul(dcb, kBCb));
                Val r4 = tb.vfpack16(r16);
                Val g4 = tb.vfpack16(g16);
                Val b4 = tb.vfpack16(b16);

                // Interleave to RGBX: merge (r,b) and (g,X), then merge
                // the halves pairwise.
                Val rb = tb.vfpmerge(r4, b4); // r0 b0 r1 b1 ...
                Val gx = tb.vfpmerge(g4, tb.imm(0)); // g0 0 g1 0 ...
                Val lo = tb.vfpmerge(rb, gx); // r0 g0 b0 0 r1 g1 b1 0
                tb.visAlignAddr(4);
                Val rb_hi = tb.vfaligndata(rb, rb);
                Val gx_hi = tb.vfaligndata(gx, gx);
                Val hi = tb.vfpmerge(rb_hi, gx_hi);
                const Addr px = out + (size_t{y} * w + x) * 4;
                tb.vstore(px, lo);
                tb.vstore(px + 8, hi);
                tb.branch(loop_pc, x + 4 < w);
            }
        }
    }
}

/** Block geometry of a padded plane. */
struct BlockGrid
{
    unsigned wb, hb;
};

BlockGrid
gridOf(const PlaneBuf &p)
{
    return {p.w / 8, p.h / 8};
}

} // namespace

// --------------------------------------------------------------------
// cjpeg / cjpeg-np
// --------------------------------------------------------------------

void
runCjpeg(TraceBuilder &tb, Variant variant, bool progressive,
         unsigned width, unsigned height)
{
    const img::Image src = img::makeTestImage(width, height, 3, 81);
    const Addr rgb = tb.alloc(src.sizeBytes(), "jpg.rgb");
    tb.arena().writeBytes(rgb, src.data(), src.sizeBytes());

    const QuantTable ql = scaleTable(lumaBaseTable(), 75);
    const QuantTable qc = scaleTable(chromaBaseTable(), 75);
    TracedTables tables(tb, ql, qc);

    PlaneBuf py = allocPlane(tb, width, height, "jpg.y");
    PlaneBuf pcb = allocPlane(tb, width / 2, height / 2, "jpg.cb");
    PlaneBuf pcr = allocPlane(tb, width / 2, height / 2, "jpg.cr");
    const Addr cb_tmp = tb.alloc(size_t{width} * height, "jpg.cbtmp");
    const Addr cr_tmp = tb.alloc(size_t{width} * height, "jpg.crtmp");

    emitColorFwd(tb, variant, rgb, width, height, py, pcb, pcr, cb_tmp,
                 cr_tmp);

    const PlaneBuf planes[3] = {py, pcb, pcr};
    EncodedJpeg enc;
    enc.width = width;
    enc.height = height;
    enc.progressive = progressive;
    enc.qLuma = ql;
    enc.qChroma = qc;

    const Addr bits_base = tb.alloc(512 * 1024, "jpg.bits");

    if (!progressive) {
        // Blocked pipeline: transform + entropy-code each block through
        // a single 64-coefficient temporary (8x8 working set).
        const Addr tmp = tb.alloc(128, "jpg.blocktmp");
        TracedHuff dc_h(tb, fixedDcTable());
        TracedHuff ac_h(tb, fixedAcTable());
        TracedBitWriter bw(tb, bits_base, 512 * 1024);
        Scan scan;
        scan.plane = kAllPlanes;
        scan.ssStart = 0;
        scan.ssEnd = 63;
        scan.dc = fixedDcTable();
        scan.ac = fixedAcTable();
        for (unsigned p = 0; p < 3; ++p) {
            const BlockGrid g = gridOf(planes[p]);
            int dc_pred = 0;
            for (unsigned by = 0; by < g.hb; ++by) {
                for (unsigned bx = 0; bx < g.wb; ++bx) {
                    const Addr bsrc = planes[p].base +
                                      size_t{by} * 8 * planes[p].w +
                                      size_t{bx} * 8;
                    emitFdctQuantBlock(tb, variant, tables, p > 0, bsrc,
                                       planes[p].w, tmp);
                    s16 zz[64];
                    for (unsigned i = 0; i < 64; ++i)
                        zz[i] = static_cast<s16>(static_cast<s64>(
                            signExtend(tb.arena().read(tmp + 2 * i, 2),
                                       16)));
                    emitEncodeBlock(tb, bw, dc_h, ac_h, tmp, zz, dc_pred,
                                    0, 63);
                }
            }
        }
        const size_t nbytes = bw.finish();
        scan.bits.resize(nbytes);
        tb.arena().readBytes(bits_base, scan.bits.data(), nbytes);
        enc.scans.push_back(std::move(scan));
    } else {
        // Transform everything into the coefficient buffers first.
        Addr coeff[3];
        BlockGrid grids[3];
        for (unsigned p = 0; p < 3; ++p) {
            grids[p] = gridOf(planes[p]);
            coeff[p] = tb.alloc(size_t{grids[p].wb} * grids[p].hb * 128,
                                "jpg.coeff");
            for (unsigned by = 0; by < grids[p].hb; ++by) {
                for (unsigned bx = 0; bx < grids[p].wb; ++bx) {
                    const Addr bsrc = planes[p].base +
                                      size_t{by} * 8 * planes[p].w +
                                      size_t{bx} * 8;
                    const Addr bdst =
                        coeff[p] +
                        (size_t{by} * grids[p].wb + bx) * 128;
                    emitFdctQuantBlock(tb, variant, tables, p > 0, bsrc,
                                       planes[p].w, bdst);
                }
            }
        }

        // Read the authoritative coefficients back for symbol logic.
        auto read_block = [&](unsigned p, unsigned bx, unsigned by,
                              s16 *zz) {
            const Addr a = coeff[p] + (size_t{by} * grids[p].wb + bx) * 128;
            for (unsigned i = 0; i < 64; ++i)
                zz[i] = static_cast<s16>(static_cast<s64>(
                    signExtend(tb.arena().read(a + 2 * i, 2), 16)));
        };

        const Addr freq_dc = tb.alloc(12 * 4, "jpg.freqdc");
        const Addr freq_ac = tb.alloc(256 * 4, "jpg.freqac");
        size_t bits_pos = 0;

        for (const auto &[plane, band] : progressiveScanPlan()) {
            const unsigned ss = band.first, se = band.second;
            // Statistics pass (traced traversal of the coefficient
            // buffer) gathering real frequencies.
            std::vector<u64> dc_freq(12, 0), ac_freq(256, 0);
            for (unsigned p = 0; p < 3; ++p) {
                if (plane != kAllPlanes && p != plane)
                    continue;
                int pred = 0;
                for (unsigned by = 0; by < grids[p].hb; ++by) {
                    for (unsigned bx = 0; bx < grids[p].wb; ++bx) {
                        s16 zz[64];
                        read_block(p, bx, by, zz);
                        std::vector<Sym> syms;
                        int pred2 = pred;
                        blockToSymbols(zz, pred2, ss, se, syms);
                        bool first = ss == 0;
                        for (const Sym &s : syms) {
                            if (first) {
                                ++dc_freq[s.sym];
                                first = false;
                            } else {
                                ++ac_freq[s.sym];
                            }
                        }
                        const Addr a =
                            coeff[p] +
                            (size_t{by} * grids[p].wb + bx) * 128;
                        if (variant == Variant::VisPrefetch) {
                            tb.prefetch(a + 512);
                            tb.prefetch(a + 576);
                        }
                        emitStatsBlock(tb, a, zz, pred, ss, se,
                                       ss == 0 ? freq_dc : freq_ac);
                    }
                }
            }
            Scan scan;
            scan.plane = plane;
            scan.ssStart = ss;
            scan.ssEnd = se;
            if (ss == 0) {
                for (auto &f : dc_freq)
                    f += 1;
                scan.dc = HuffTable::fromFrequencies(dc_freq);
            }
            if (se > 0) {
                for (auto &f : ac_freq)
                    f += 1;
                scan.ac = HuffTable::fromFrequencies(ac_freq);
            }
            TracedHuff dc_h(tb, ss == 0 ? scan.dc : fixedDcTable());
            TracedHuff ac_h(tb, se > 0 ? scan.ac : fixedAcTable());

            // Encode pass.
            TracedBitWriter bw(tb, bits_base + bits_pos,
                               512 * 1024 - bits_pos);
            for (unsigned p = 0; p < 3; ++p) {
                if (plane != kAllPlanes && p != plane)
                    continue;
                int pred = 0;
                for (unsigned by = 0; by < grids[p].hb; ++by) {
                    for (unsigned bx = 0; bx < grids[p].wb; ++bx) {
                        s16 zz[64];
                        read_block(p, bx, by, zz);
                        const Addr a =
                            coeff[p] +
                            (size_t{by} * grids[p].wb + bx) * 128;
                        if (variant == Variant::VisPrefetch) {
                            tb.prefetch(a + 512);
                            tb.prefetch(a + 576);
                        }
                        emitEncodeBlock(tb, bw, dc_h, ac_h, a, zz, pred,
                                        ss, se);
                    }
                }
            }
            const size_t nbytes = bw.finish();
            scan.bits.resize(nbytes);
            tb.arena().readBytes(bits_base + bits_pos, scan.bits.data(),
                                 nbytes);
            bits_pos += nbytes;
            enc.scans.push_back(std::move(scan));
        }
    }

    // Verify: native decode of the traced stream must reconstruct the
    // source faithfully.
    const img::Image round = decodeJpeg(enc);
    const double p = img::psnr(src, round);
    if (p < 24.0)
        panic("cjpeg%s (%s): roundtrip PSNR %.1f dB too low",
              progressive ? "" : "-np",
              variant == Variant::Scalar ? "scalar" : "vis", p);
}

// --------------------------------------------------------------------
// djpeg / djpeg-np
// --------------------------------------------------------------------

void
runDjpeg(TraceBuilder &tb, Variant variant, bool progressive,
         unsigned width, unsigned height)
{
    const img::Image src = img::makeTestImage(width, height, 3, 82);
    const EncodedJpeg enc = encodeJpeg(src, progressive, 75);
    const img::Image native_out = decodeJpeg(enc);

    TracedTables tables(tb, enc.qLuma, enc.qChroma);

    PlaneBuf py = allocPlane(tb, width, height, "jpd.y");
    PlaneBuf pcb = allocPlane(tb, width / 2, height / 2, "jpd.cb");
    PlaneBuf pcr = allocPlane(tb, width / 2, height / 2, "jpd.cr");
    const PlaneBuf planes[3] = {py, pcb, pcr};
    BlockGrid grids[3];
    for (unsigned p = 0; p < 3; ++p)
        grids[p] = gridOf(planes[p]);

    const bool vis = variant != Variant::Scalar;
    const Addr out = tb.alloc(size_t{width} * height * (vis ? 4 : 3),
                              "jpd.out");

    if (!progressive) {
        // Blocked pipeline: decode + IDCT per block.
        const Scan &scan = enc.scans.at(0);
        TracedHuff dc_h(tb, scan.dc);
        TracedHuff ac_h(tb, scan.ac);
        const Addr stream = tb.alloc(scan.bits.size() + 64, "jpd.bits");
        TracedBitReader br(tb, scan.bits, stream);
        const Addr tmp = tb.alloc(128, "jpd.blocktmp");
        for (unsigned p = 0; p < 3; ++p) {
            int pred = 0;
            for (unsigned by = 0; by < grids[p].hb; ++by) {
                for (unsigned bx = 0; bx < grids[p].wb; ++bx) {
                    emitZeroBlock(tb, variant, tmp);
                    emitDecodeBlock(tb, br, dc_h, ac_h, pred, 0, 63, tmp);
                    const Addr bdst = planes[p].base +
                                      size_t{by} * 8 * planes[p].w +
                                      size_t{bx} * 8;
                    emitIdctBlock(tb, variant, tables, p > 0, tmp, bdst,
                                  planes[p].w);
                }
            }
        }
    } else {
        // Progressive: coefficient buffers accumulate across scans.
        Addr coeff[3];
        for (unsigned p = 0; p < 3; ++p) {
            coeff[p] = tb.alloc(size_t{grids[p].wb} * grids[p].hb * 128,
                                "jpd.coeff");
            for (size_t i = 0;
                 i < size_t{grids[p].wb} * grids[p].hb * 128; i += 8)
                tb.store(coeff[p] + i, 8, tb.imm(0));
        }
        for (const Scan &scan : enc.scans) {
            TracedHuff dc_h(tb, scan.ssStart == 0 ? scan.dc
                                                  : fixedDcTable());
            TracedHuff ac_h(tb, scan.ssEnd > 0 ? scan.ac
                                               : fixedAcTable());
            const Addr stream =
                tb.alloc(scan.bits.size() + 64, "jpd.sbits");
            TracedBitReader br(tb, scan.bits, stream);
            for (unsigned p = 0; p < 3; ++p) {
                if (scan.plane != kAllPlanes && p != scan.plane)
                    continue;
                int pred = 0;
                for (unsigned by = 0; by < grids[p].hb; ++by) {
                    for (unsigned bx = 0; bx < grids[p].wb; ++bx) {
                        const Addr a =
                            coeff[p] +
                            (size_t{by} * grids[p].wb + bx) * 128;
                        if (variant == Variant::VisPrefetch) {
                            tb.prefetch(a + 512);
                            tb.prefetch(a + 576);
                        }
                        emitDecodeBlock(tb, br, dc_h, ac_h, pred,
                                        scan.ssStart, scan.ssEnd, a);
                    }
                }
            }
        }
        // IDCT pass over the full coefficient buffers.
        for (unsigned p = 0; p < 3; ++p) {
            for (unsigned by = 0; by < grids[p].hb; ++by) {
                for (unsigned bx = 0; bx < grids[p].wb; ++bx) {
                    const Addr a = coeff[p] +
                                   (size_t{by} * grids[p].wb + bx) * 128;
                    const Addr bdst = planes[p].base +
                                      size_t{by} * 8 * planes[p].w +
                                      size_t{bx} * 8;
                    if (variant == Variant::VisPrefetch) {
                        tb.prefetch(a + 512);
                        tb.prefetch(a + 576);
                    }
                    emitIdctBlock(tb, variant, tables, p > 0, a, bdst,
                                  planes[p].w);
                }
            }
        }
    }

    emitColorInv(tb, variant, py, pcb, pcr, out, width, height);

    // Verify.
    img::Image got(width, height, 3);
    if (!vis) {
        tb.arena().readBytes(out, got.data(), got.sizeBytes());
        if (got != native_out) {
            const double p = img::psnr(got, native_out);
            if (p < 45.0)
                panic("djpeg%s scalar mismatch vs native decode "
                      "(psnr %.1f)",
                      progressive ? "" : "-np", p);
        }
    } else {
        std::vector<u8> rgbx(size_t{width} * height * 4);
        tb.arena().readBytes(out, rgbx.data(), rgbx.size());
        for (unsigned y = 0; y < height; ++y)
            for (unsigned x = 0; x < width; ++x)
                for (unsigned b = 0; b < 3; ++b)
                    got.at(x, y, b) =
                        rgbx[(size_t{y} * width + x) * 4 + b];
        const double p = img::psnr(got, native_out);
        if (p < 24.0)
            panic("djpeg%s vis output PSNR %.1f dB too low vs native",
                  progressive ? "" : "-np", p);
    }
    const double psrc = img::psnr(got, src);
    if (psrc < 22.0)
        panic("djpeg%s (%s): decode PSNR vs source %.1f dB too low",
              progressive ? "" : "-np",
              variant == Variant::Scalar ? "scalar" : "vis", psrc);
}

} // namespace msim::jpeg
