#include "jpeg/huffman.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace msim::jpeg
{

void
BitWriter::put(u32 code, unsigned len)
{
    if (len > 24)
        panic("bitwriter: %u bits in one put", len);
    acc = (acc << len) | (code & ((len < 32 ? (u32{1} << len) : 0) - 1));
    nbits += len;
    while (nbits >= 8) {
        nbits -= 8;
        bits.push_back(static_cast<u8>(acc >> nbits));
    }
}

std::vector<u8>
BitWriter::finish()
{
    if (nbits) {
        const unsigned pad = 8 - nbits;
        put((1u << pad) - 1, pad);
    }
    return std::move(bits);
}

u32
BitReader::getBit()
{
    if (nbits == 0) {
        if (pos >= bytes->size())
            panic("bitreader: read past end of stream");
        acc = (*bytes)[pos++];
        nbits = 8;
    }
    --nbits;
    return (acc >> nbits) & 1;
}

u32
BitReader::getBits(unsigned n)
{
    u32 v = 0;
    for (unsigned i = 0; i < n; ++i)
        v = (v << 1) | getBit();
    return v;
}

bool
BitReader::exhausted() const
{
    return pos >= bytes->size() && nbits == 0;
}

HuffTable
HuffTable::fromFrequencies(const std::vector<u64> &freq)
{
    const unsigned n = static_cast<unsigned>(freq.size());
    std::vector<u64> f(freq);

    std::vector<u8> lens(n, 0);
    for (;;) {
        // Heap-based Huffman over nonzero symbols.
        struct Node
        {
            u64 weight;
            int left, right; ///< children, or ~symbol for leaves
        };
        std::vector<Node> nodes;
        using HeapItem = std::pair<u64, int>;
        std::priority_queue<HeapItem, std::vector<HeapItem>,
                            std::greater<>> heap;
        for (unsigned s = 0; s < n; ++s) {
            if (f[s]) {
                nodes.push_back({f[s], ~static_cast<int>(s), 0});
                heap.emplace(f[s], static_cast<int>(nodes.size()) - 1);
            }
        }
        if (heap.empty())
            fatal("huffman: no symbols with nonzero frequency");
        if (heap.size() == 1) {
            // Single symbol: give it a 1-bit code.
            const int idx = heap.top().second;
            lens.assign(n, 0);
            lens[~nodes[idx].left] = 1;
            break;
        }
        while (heap.size() > 1) {
            const auto [wa, a] = heap.top();
            heap.pop();
            const auto [wb, b] = heap.top();
            heap.pop();
            nodes.push_back({wa + wb, a, b});
            heap.emplace(wa + wb, static_cast<int>(nodes.size()) - 1);
        }
        // Depth-assign code lengths iteratively.
        lens.assign(n, 0);
        unsigned maxlen = 0;
        std::vector<std::pair<int, unsigned>> stack{
            {heap.top().second, 0}};
        while (!stack.empty()) {
            const auto [idx, depth] = stack.back();
            stack.pop_back();
            const Node &node = nodes[idx];
            if (node.left < 0) {
                // Leaf.
                lens[~node.left] = static_cast<u8>(depth ? depth : 1);
                maxlen = std::max(maxlen, depth ? depth : 1);
            } else {
                stack.emplace_back(node.left, depth + 1);
                stack.emplace_back(node.right, depth + 1);
            }
        }
        if (maxlen <= kMaxCodeLen)
            break;
        // Too deep: flatten the distribution and retry (IJG-style).
        for (auto &w : f)
            if (w)
                w = (w + 1) / 2;
    }

    // Canonical code assignment: order by (length, symbol).
    std::vector<unsigned> order;
    for (unsigned s = 0; s < n; ++s)
        if (lens[s])
            order.push_back(s);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return lens[a] != lens[b] ? lens[a] < lens[b] : a < b;
    });

    HuffTable t;
    t.code_.assign(n, 0);
    t.len_.assign(lens.begin(), lens.end());
    u32 code = 0;
    unsigned prev_len = 0;
    for (unsigned s : order) {
        code <<= (lens[s] - prev_len);
        prev_len = lens[s];
        t.code_[s] = code++;
    }
    t.buildDecodeTables();
    return t;
}

void
HuffTable::buildDecodeTables()
{
    // Group symbols by code length in canonical order.
    std::vector<unsigned> order;
    for (unsigned s = 0; s < len_.size(); ++s)
        if (len_[s])
            order.push_back(s);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return len_[a] != len_[b] ? len_[a] < len_[b] : a < b;
    });

    vals.clear();
    u32 code = 0;
    size_t k = 0;
    for (unsigned l = 1; l <= kMaxCodeLen; ++l) {
        code <<= 1;
        if (k < order.size() && len_[order[k]] == l) {
            valptr[l] = static_cast<u16>(vals.size());
            mincode[l] = static_cast<s32>(code);
            while (k < order.size() && len_[order[k]] == l) {
                vals.push_back(static_cast<u16>(order[k]));
                ++k;
                ++code;
            }
            maxcode[l] = static_cast<s32>(code) - 1;
        } else {
            mincode[l] = 0;
            maxcode[l] = -1;
        }
    }
}

void
HuffTable::encode(BitWriter &bw, unsigned sym) const
{
    const unsigned len = len_[sym];
    if (!len)
        panic("huffman: encoding symbol %u with no code", sym);
    bw.put(code_[sym], len);
}

unsigned
HuffTable::decode(BitReader &br) const
{
    unsigned len;
    return decode(br, len);
}

unsigned
HuffTable::decode(BitReader &br, unsigned &len_out) const
{
    s32 code = static_cast<s32>(br.getBit());
    unsigned l = 1;
    while (l <= kMaxCodeLen && code > maxcode[l]) {
        code = (code << 1) | static_cast<s32>(br.getBit());
        ++l;
    }
    if (l > kMaxCodeLen)
        panic("huffman: corrupt stream (no code <= %u bits)", kMaxCodeLen);
    len_out = l;
    return vals[valptr[l] + static_cast<unsigned>(code - mincode[l])];
}

} // namespace msim::jpeg
