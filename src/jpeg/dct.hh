/**
 * @file
 * 8x8 integer DCT-II / inverse DCT used by both codecs.
 *
 * The transform is an orthonormal matrix product in 1.11 fixed point
 * (forward: F = M X M^T, inverse: X = M^T F M) using an even/odd
 * decomposition per 1-D pass. The same constant matrix drives both the
 * native reference implementation here and the trace-builder versions
 * in jpeg/traced.cc, so simulated and reference arithmetic match.
 */

#ifndef MSIM_JPEG_DCT_HH_
#define MSIM_JPEG_DCT_HH_

#include <array>

#include "common/types.hh"

namespace msim::jpeg
{

/** Fixed-point fraction bits of the DCT basis constants. */
constexpr int kDctBits = 11;

using DctMatrixT = std::array<std::array<int, 8>, 8>;

/**
 * Orthonormal DCT-II basis matrix, row k = 0.5 * C_k * cos((2n+1)k pi/16),
 * scaled by 2^kDctBits.
 */
const DctMatrixT &dctMatrix();

/** Fixed-point multiply by a basis constant: (a*c) >> kDctBits. */
constexpr s32
dctMul(s32 a, int c)
{
    return static_cast<s32>((static_cast<s64>(a) * c) >> kDctBits);
}

/**
 * Forward DCT on a level-shifted 8x8 block (row-major, values in
 * [-128, 127]); coefficients magnitude-bounded by ~1024.
 */
void fdct8x8(const s16 in[64], s16 out[64]);

/** Inverse DCT; output is NOT clamped (caller level-unshifts + clamps). */
void idct8x8(const s16 in[64], s16 out[64]);

} // namespace msim::jpeg

#endif // MSIM_JPEG_DCT_HH_
