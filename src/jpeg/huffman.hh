/**
 * @file
 * Canonical Huffman coding: code construction (length-limited to 16
 * bits, JPEG-style), native bit I/O, and the JPEG magnitude-category
 * helpers shared by the JPEG and MPEG entropy stages.
 *
 * The progressive encoder builds optimized tables from symbol
 * statistics (as IJG's -optimize/progressive modes do); the baseline
 * encoder and the MPEG codec use fixed tables built once from a
 * synthetic frequency profile. Tables travel with the encoded stream
 * in memory; header serialization is elided (timing-irrelevant).
 */

#ifndef MSIM_JPEG_HUFFMAN_HH_
#define MSIM_JPEG_HUFFMAN_HH_

#include <array>
#include <vector>

#include "common/types.hh"

namespace msim::jpeg
{

/** Maximum code length (JPEG limit). */
constexpr unsigned kMaxCodeLen = 16;

/** Append-only bit stream writer (MSB first, as in JPEG). */
class BitWriter
{
  public:
    /** Append the low @p len bits of @p code. */
    void put(u32 code, unsigned len);

    /** Pad with 1-bits to a byte boundary and return the stream. */
    std::vector<u8> finish();

    size_t bitCount() const { return bits.size() * 8 + nbits; }

  private:
    std::vector<u8> bits;
    u32 acc = 0;
    unsigned nbits = 0;
};

/** Bit stream reader matching BitWriter's layout. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<u8> &bytes) : bytes(&bytes) {}

    /** Read one bit; panics past end-of-stream. */
    u32 getBit();

    /** Read @p n bits MSB-first. */
    u32 getBits(unsigned n);

    /** Byte offset of the next unread bit (for traced mirroring). */
    size_t bytePos() const { return pos; }

    bool exhausted() const;

  private:
    const std::vector<u8> *bytes;
    size_t pos = 0;
    u32 acc = 0;
    unsigned nbits = 0;
};

/** A canonical Huffman code over symbols 0..n-1. */
class HuffTable
{
  public:
    HuffTable() = default;

    /**
     * Build a length-limited canonical code. Symbols with zero
     * frequency get no code; at least one symbol must be nonzero.
     */
    static HuffTable fromFrequencies(const std::vector<u64> &freq);

    u32 codeOf(unsigned sym) const { return code_[sym]; }
    unsigned lenOf(unsigned sym) const { return len_[sym]; }

    /** Encode one symbol. */
    void encode(BitWriter &bw, unsigned sym) const;

    /** Decode one symbol (canonical mincode/maxcode walk, F.16 style). */
    unsigned decode(BitReader &br) const;

    /**
     * Decode while reporting the code length consumed (used by the
     * traced decoder to emit a realistic op count).
     */
    unsigned decode(BitReader &br, unsigned &len_out) const;

    unsigned numSymbols() const { return static_cast<unsigned>(len_.size()); }

  private:
    void buildDecodeTables();

    std::vector<u32> code_;
    std::vector<u8> len_;
    // Canonical decode tables per length 1..16.
    std::array<s32, kMaxCodeLen + 1> mincode{};
    std::array<s32, kMaxCodeLen + 1> maxcode{};
    std::array<u16, kMaxCodeLen + 1> valptr{};
    std::vector<u16> vals;
};

/** JPEG magnitude category: number of bits to represent |v|. */
constexpr unsigned
magnitudeCategory(int v)
{
    unsigned n = 0;
    unsigned m = static_cast<unsigned>(v < 0 ? -v : v);
    while (m) {
        ++n;
        m >>= 1;
    }
    return n;
}

/** JPEG magnitude bits for value @p v in category @p cat. */
constexpr u32
magnitudeBits(int v, unsigned cat)
{
    return v >= 0 ? static_cast<u32>(v)
                  : static_cast<u32>(v + (1 << cat) - 1);
}

/** Inverse of magnitudeBits. */
constexpr int
magnitudeExtend(u32 bits, unsigned cat)
{
    if (cat == 0)
        return 0;
    if (bits < (1u << (cat - 1)))
        return static_cast<int>(bits) - (1 << cat) + 1;
    return static_cast<int>(bits);
}

} // namespace msim::jpeg

#endif // MSIM_JPEG_HUFFMAN_HH_
