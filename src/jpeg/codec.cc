#include "jpeg/codec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/saturate.hh"
#include "jpeg/dct.hh"
#include "jpeg/zigzag.hh"

namespace msim::jpeg
{

namespace
{

constexpr unsigned kZrl = 0xf0; ///< run-of-16-zeros symbol
constexpr unsigned kEob = 0x00; ///< end-of-band symbol

/** Synthetic profile for the fixed baseline tables. */
std::vector<u64>
fixedDcFreq()
{
    std::vector<u64> f(12, 0);
    for (unsigned c = 0; c < 12; ++c)
        f[c] = u64{1} << (c < 8 ? (10 - c) : 1);
    return f;
}

std::vector<u64>
fixedAcFreq()
{
    std::vector<u64> f(256, 1); // every symbol representable
    f[kEob] = 4000;
    f[kZrl] = 200;
    for (unsigned run = 0; run < 16; ++run) {
        for (unsigned cat = 1; cat <= 10; ++cat) {
            const unsigned sym = (run << 4) | cat;
            f[sym] += (2000 >> std::min(run, 10u)) / cat;
        }
    }
    return f;
}

} // namespace

const HuffTable &
fixedDcTable()
{
    static const HuffTable t = HuffTable::fromFrequencies(fixedDcFreq());
    return t;
}

const HuffTable &
fixedAcTable()
{
    static const HuffTable t = HuffTable::fromFrequencies(fixedAcFreq());
    return t;
}

CoeffPlane
transformPlane(const Plane &padded, const QuantTable &q)
{
    if (padded.w % 8 || padded.h % 8)
        panic("transformPlane: plane %ux%u not padded", padded.w, padded.h);
    CoeffPlane out;
    out.wBlocks = padded.w / 8;
    out.hBlocks = padded.h / 8;
    out.data.resize(size_t{out.wBlocks} * out.hBlocks * 64);

    s16 block[64], freq[64], zz[64];
    for (unsigned by = 0; by < out.hBlocks; ++by) {
        for (unsigned bx = 0; bx < out.wBlocks; ++bx) {
            for (unsigned y = 0; y < 8; ++y)
                for (unsigned x = 0; x < 8; ++x)
                    block[y * 8 + x] = static_cast<s16>(
                        int(padded.at(bx * 8 + x, by * 8 + y)) - 128);
            fdct8x8(block, freq);
            for (unsigned i = 0; i < 64; ++i)
                freq[i] = quantOne(freq[i], q[i]);
            toZigzag(freq, zz);
            for (unsigned i = 0; i < 64; ++i)
                out.block(bx, by)[i] = zz[i];
        }
    }
    return out;
}

Plane
reconstructPlane(const CoeffPlane &coeffs, const QuantTable &q)
{
    Plane out(coeffs.wBlocks * 8, coeffs.hBlocks * 8);
    s16 zz[64], freq[64], px[64];
    for (unsigned by = 0; by < coeffs.hBlocks; ++by) {
        for (unsigned bx = 0; bx < coeffs.wBlocks; ++bx) {
            for (unsigned i = 0; i < 64; ++i)
                zz[i] = coeffs.block(bx, by)[i];
            fromZigzag(zz, freq);
            for (unsigned i = 0; i < 64; ++i)
                freq[i] = static_cast<s16>(
                    satS16(dequantOne(freq[i], q[i])));
            idct8x8(freq, px);
            for (unsigned y = 0; y < 8; ++y)
                for (unsigned x = 0; x < 8; ++x)
                    out.at(bx * 8 + x, by * 8 + y) =
                        satU8(px[y * 8 + x] + 128);
        }
    }
    return out;
}

void
blockToSymbols(const s16 *zz, int &dc_pred, unsigned ss_start,
               unsigned ss_end, std::vector<Sym> &out)
{
    unsigned i = ss_start;
    if (ss_start == 0) {
        const int diff = zz[0] - dc_pred;
        dc_pred = zz[0];
        const unsigned cat = magnitudeCategory(diff);
        out.push_back({static_cast<u8>(cat), static_cast<u8>(cat),
                       magnitudeBits(diff, cat)});
        i = 1;
    }
    unsigned run = 0;
    for (; i <= ss_end; ++i) {
        if (zz[i] == 0) {
            ++run;
            continue;
        }
        while (run > 15) {
            out.push_back({static_cast<u8>(kZrl), 0, 0});
            run -= 16;
        }
        const unsigned cat = magnitudeCategory(zz[i]);
        out.push_back({static_cast<u8>((run << 4) | cat),
                       static_cast<u8>(cat), magnitudeBits(zz[i], cat)});
        run = 0;
    }
    if (run > 0)
        out.push_back({static_cast<u8>(kEob), 0, 0});
}

void
symbolsToBlock(BitReader &br, const HuffTable &dc, const HuffTable &ac,
               int &dc_pred, unsigned ss_start, unsigned ss_end, s16 *zz)
{
    unsigned i = ss_start;
    if (ss_start == 0) {
        const unsigned cat = dc.decode(br);
        const u32 bits = br.getBits(cat);
        dc_pred += magnitudeExtend(bits, cat);
        zz[0] = static_cast<s16>(dc_pred);
        i = 1;
    }
    while (i <= ss_end) {
        const unsigned sym = ac.decode(br);
        if (sym == kEob)
            break;
        if (sym == kZrl) {
            i += 16;
            continue;
        }
        const unsigned run = sym >> 4;
        const unsigned cat = sym & 0xf;
        i += run;
        if (i > ss_end)
            panic("jpeg: AC run overflows band (%u > %u)", i, ss_end);
        const u32 bits = br.getBits(cat);
        zz[i] = static_cast<s16>(magnitudeExtend(bits, cat));
        ++i;
    }
}

std::vector<std::pair<unsigned, std::pair<unsigned, unsigned>>>
progressiveScanPlan()
{
    // DC scan across all planes, then spectral-selection AC scans.
    return {
        {kAllPlanes, {0, 0}},
        {0, {1, 20}},
        {0, {21, 63}},
        {1, {1, 63}},
        {2, {1, 63}},
    };
}

namespace
{

/** Encode one scan over the given coefficient planes. */
Scan
encodeScan(const std::vector<CoeffPlane> &planes, unsigned plane,
           unsigned ss_start, unsigned ss_end, bool optimize)
{
    Scan scan;
    scan.plane = plane;
    scan.ssStart = ss_start;
    scan.ssEnd = ss_end;

    // Gather the symbol stream (this is also the statistics pass).
    const bool has_dc = ss_start == 0;
    auto for_blocks = [&](auto &&fn) {
        for (unsigned p = 0; p < planes.size(); ++p) {
            if (plane != kAllPlanes && p != plane)
                continue;
            int dc_pred = 0;
            const CoeffPlane &cp = planes[p];
            for (unsigned by = 0; by < cp.hBlocks; ++by)
                for (unsigned bx = 0; bx < cp.wBlocks; ++bx)
                    fn(cp.block(bx, by), dc_pred);
        }
    };

    std::vector<std::vector<Sym>> per_block;
    for_blocks([&](const s16 *zz, int &dc_pred) {
        std::vector<Sym> block_syms;
        blockToSymbols(zz, dc_pred, ss_start, ss_end, block_syms);
        per_block.push_back(std::move(block_syms));
    });

    // Build tables.
    if (optimize) {
        std::vector<u64> dc_freq(12, 0), ac_freq(256, 0);
        for (const auto &bs : per_block) {
            bool first = has_dc;
            for (const Sym &s : bs) {
                if (first) {
                    ++dc_freq[s.sym];
                    first = false;
                } else {
                    ++ac_freq[s.sym];
                }
            }
        }
        // Ensure decodability of any symbol the band could produce.
        if (has_dc) {
            for (auto &f : dc_freq)
                f += 1;
            scan.dc = HuffTable::fromFrequencies(dc_freq);
        }
        if (ss_end > 0) {
            for (auto &f : ac_freq)
                f += 1;
            scan.ac = HuffTable::fromFrequencies(ac_freq);
        }
    } else {
        scan.dc = fixedDcTable();
        scan.ac = fixedAcTable();
    }

    // Emit bits.
    BitWriter bw;
    for (const auto &bs : per_block) {
        bool first = has_dc;
        for (const Sym &s : bs) {
            if (first) {
                scan.dc.encode(bw, s.sym);
                first = false;
            } else {
                scan.ac.encode(bw, s.sym);
            }
            if (s.nbits)
                bw.put(s.bits, s.nbits);
        }
    }
    scan.bits = bw.finish();
    return scan;
}

/** Decode one scan into the coefficient planes. */
void
decodeScan(const Scan &scan, std::vector<CoeffPlane> &planes)
{
    BitReader br(scan.bits);
    for (unsigned p = 0; p < planes.size(); ++p) {
        if (scan.plane != kAllPlanes && p != scan.plane)
            continue;
        int dc_pred = 0;
        CoeffPlane &cp = planes[p];
        for (unsigned by = 0; by < cp.hBlocks; ++by)
            for (unsigned bx = 0; bx < cp.wBlocks; ++bx)
                symbolsToBlock(br, scan.dc, scan.ac, dc_pred,
                               scan.ssStart, scan.ssEnd,
                               cp.block(bx, by));
    }
}

std::vector<CoeffPlane>
transformAll(const img::Image &rgb, const QuantTable &ql,
             const QuantTable &qc)
{
    const Ycc420 ycc = rgbToYcc420(rgb);
    std::vector<CoeffPlane> planes;
    planes.push_back(transformPlane(padToBlocks(ycc.y), ql));
    planes.push_back(transformPlane(padToBlocks(ycc.cb), qc));
    planes.push_back(transformPlane(padToBlocks(ycc.cr), qc));
    return planes;
}

} // namespace

EncodedJpeg
encodeJpeg(const img::Image &rgb, bool progressive, int quality)
{
    EncodedJpeg enc;
    enc.width = rgb.width();
    enc.height = rgb.height();
    enc.progressive = progressive;
    enc.qLuma = scaleTable(lumaBaseTable(), quality);
    enc.qChroma = scaleTable(chromaBaseTable(), quality);

    const std::vector<CoeffPlane> planes =
        transformAll(rgb, enc.qLuma, enc.qChroma);

    if (progressive) {
        for (const auto &[plane, band] : progressiveScanPlan())
            enc.scans.push_back(encodeScan(planes, plane, band.first,
                                           band.second, true));
    } else {
        enc.scans.push_back(encodeScan(planes, kAllPlanes, 0, 63, false));
    }
    return enc;
}

img::Image
decodeJpeg(const EncodedJpeg &enc)
{
    const unsigned yw = static_cast<unsigned>((enc.width + 7) / 8);
    const unsigned yh = static_cast<unsigned>((enc.height + 7) / 8);
    const unsigned cw = static_cast<unsigned>((enc.width / 2 + 7) / 8);
    const unsigned ch = static_cast<unsigned>((enc.height / 2 + 7) / 8);

    std::vector<CoeffPlane> planes(3);
    planes[0].wBlocks = yw;
    planes[0].hBlocks = yh;
    planes[1].wBlocks = planes[2].wBlocks = cw;
    planes[1].hBlocks = planes[2].hBlocks = ch;
    for (auto &p : planes)
        p.data.assign(size_t{p.wBlocks} * p.hBlocks * 64, 0);

    for (const Scan &scan : enc.scans)
        decodeScan(scan, planes);

    Ycc420 ycc;
    const Plane ypad = reconstructPlane(planes[0], enc.qLuma);
    const Plane cbpad = reconstructPlane(planes[1], enc.qChroma);
    const Plane crpad = reconstructPlane(planes[2], enc.qChroma);

    // Crop the padded planes back to image dimensions.
    auto crop = [](const Plane &p, unsigned w, unsigned h) {
        Plane out(w, h);
        for (unsigned y = 0; y < h; ++y)
            for (unsigned x = 0; x < w; ++x)
                out.at(x, y) = p.at(x, y);
        return out;
    };
    ycc.y = crop(ypad, enc.width, enc.height);
    ycc.cb = crop(cbpad, enc.width / 2, enc.height / 2);
    ycc.cr = crop(crpad, enc.width / 2, enc.height / 2);

    return ycc420ToRgb(ycc, enc.width, enc.height);
}

} // namespace msim::jpeg
