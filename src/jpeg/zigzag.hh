/**
 * @file
 * The JPEG zig-zag scan order and (de)reordering helpers.
 */

#ifndef MSIM_JPEG_ZIGZAG_HH_
#define MSIM_JPEG_ZIGZAG_HH_

#include <array>

#include "common/types.hh"

namespace msim::jpeg
{

/** kZigzag[i] is the row-major index of the i-th coefficient in scan order. */
extern const std::array<u8, 64> kZigzag;

/** Inverse permutation: kUnzigzag[row_major_index] = scan position. */
extern const std::array<u8, 64> kUnzigzag;

/** Reorder a row-major block into zig-zag scan order. */
void toZigzag(const s16 in[64], s16 out[64]);

/** Reorder a zig-zag block back to row-major order. */
void fromZigzag(const s16 in[64], s16 out[64]);

} // namespace msim::jpeg

#endif // MSIM_JPEG_ZIGZAG_HH_
