#include "jpeg/dct.hh"

#include <cmath>

namespace msim::jpeg
{

const DctMatrixT &
dctMatrix()
{
    static const DctMatrixT m = [] {
        DctMatrixT t{};
        const double pi = std::acos(-1.0);
        for (int k = 0; k < 8; ++k) {
            const double ck = k == 0 ? std::sqrt(0.5) : 1.0;
            for (int n = 0; n < 8; ++n) {
                const double v =
                    0.5 * ck * std::cos((2 * n + 1) * k * pi / 16.0);
                t[k][n] =
                    static_cast<int>(std::lround(v * (1 << kDctBits)));
            }
        }
        return t;
    }();
    return m;
}

namespace
{

/** One forward 1-D pass: out[k] = sum_n M[k][n] * in[n]. */
void
fpass(const s32 *in, s32 *out)
{
    const DctMatrixT &m = dctMatrix();
    for (int k = 0; k < 8; ++k) {
        s64 acc = 0;
        for (int n = 0; n < 8; ++n)
            acc += static_cast<s64>(m[k][n]) * in[n];
        out[k] = static_cast<s32>((acc + (1 << (kDctBits - 1))) >>
                                  kDctBits);
    }
}

/** One inverse 1-D pass: out[n] = sum_k M[k][n] * in[k]. */
void
ipass(const s32 *in, s32 *out)
{
    const DctMatrixT &m = dctMatrix();
    for (int n = 0; n < 8; ++n) {
        s64 acc = 0;
        for (int k = 0; k < 8; ++k)
            acc += static_cast<s64>(m[k][n]) * in[k];
        out[n] = static_cast<s32>((acc + (1 << (kDctBits - 1))) >>
                                  kDctBits);
    }
}

} // namespace

void
fdct8x8(const s16 in[64], s16 out[64])
{
    s32 tmp[64];
    s32 row_in[8], row_out[8];
    // Rows.
    for (int r = 0; r < 8; ++r) {
        for (int n = 0; n < 8; ++n)
            row_in[n] = in[r * 8 + n];
        fpass(row_in, row_out);
        for (int k = 0; k < 8; ++k)
            tmp[r * 8 + k] = row_out[k];
    }
    // Columns.
    for (int c = 0; c < 8; ++c) {
        s32 col_in[8], col_out[8];
        for (int n = 0; n < 8; ++n)
            col_in[n] = tmp[n * 8 + c];
        fpass(col_in, col_out);
        for (int k = 0; k < 8; ++k)
            out[k * 8 + c] = static_cast<s16>(col_out[k]);
    }
}

void
idct8x8(const s16 in[64], s16 out[64])
{
    s32 tmp[64];
    // Columns (inverse order of the forward transform).
    for (int c = 0; c < 8; ++c) {
        s32 col_in[8], col_out[8];
        for (int k = 0; k < 8; ++k)
            col_in[k] = in[k * 8 + c];
        ipass(col_in, col_out);
        for (int n = 0; n < 8; ++n)
            tmp[n * 8 + c] = col_out[n];
    }
    for (int r = 0; r < 8; ++r) {
        s32 row_in[8], row_out[8];
        for (int k = 0; k < 8; ++k)
            row_in[k] = tmp[r * 8 + k];
        ipass(row_in, row_out);
        for (int n = 0; n < 8; ++n)
            out[r * 8 + n] = static_cast<s16>(row_out[n]);
    }
}

} // namespace msim::jpeg
