/**
 * @file
 * Table-2 functional-unit latencies and counts.
 *
 * Latencies (cycles, 1 GHz): default integer/addrgen 1, integer
 * multiply 7, divide 12, default FP 4, FP moves/converts 4, FP divide
 * 12 (not pipelined), default VIS 1, VIS multiply and pdist 3.
 * Counts (4-way config): 2 integer, 2 FP, 2 address generation, 1 VIS
 * multiplier, 1 VIS adder; a 1-way config scales all counts to 1.
 */

#ifndef MSIM_ISA_TIMING_HH_
#define MSIM_ISA_TIMING_HH_

#include "isa/inst.hh"

namespace msim::isa
{

/** Execution latency and pipelining per opcode class. */
struct OpTiming
{
    unsigned latency;
    bool pipelined;
};

/** Latency table indexed by Op; matches the paper's Table 2. */
OpTiming timingOf(Op op);

/** Default functional unit counts for a @p issue_width -way machine. */
unsigned defaultFuCount(FuClass cls, unsigned issue_width);

} // namespace msim::isa

#endif // MSIM_ISA_TIMING_HH_
