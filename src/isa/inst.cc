#include "isa/inst.hh"

#include <sstream>

#include "common/logging.hh"

namespace msim::isa
{

MixClass
mixClassOf(Op op)
{
    switch (op) {
      case Op::IntAlu:
      case Op::IntMul:
      case Op::IntDiv:
      case Op::FpAlu:
      case Op::FpMul:
      case Op::FpDiv:
      case Op::FpMov:
        return MixClass::Fu;
      case Op::Branch:
        return MixClass::Branch;
      case Op::Load:
      case Op::Store:
      case Op::Prefetch:
        return MixClass::Memory;
      case Op::VisAdd:
      case Op::VisMul:
      case Op::VisPdist:
      case Op::VisAlign:
      case Op::VisPack:
      case Op::VisGsr:
        return MixClass::Vis;
      default:
        panic("mixClassOf: bad op %u", static_cast<unsigned>(op));
    }
}

FuClass
fuClassOf(Op op)
{
    switch (op) {
      case Op::IntAlu:
      case Op::IntMul:
      case Op::IntDiv:
      case Op::Branch:
        return FuClass::IntUnit;
      case Op::FpAlu:
      case Op::FpMul:
      case Op::FpDiv:
      case Op::FpMov:
        return FuClass::FpUnit;
      case Op::Load:
      case Op::Store:
      case Op::Prefetch:
        return FuClass::AddrGen;
      case Op::VisAdd:
      case Op::VisAlign:
      case Op::VisPack:
      case Op::VisGsr:
        return FuClass::VisAdder;
      case Op::VisMul:
      case Op::VisPdist:
        return FuClass::VisMul;
      default:
        panic("fuClassOf: bad op %u", static_cast<unsigned>(op));
    }
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::IntAlu: return "ialu";
      case Op::IntMul: return "imul";
      case Op::IntDiv: return "idiv";
      case Op::FpAlu: return "fpalu";
      case Op::FpMul: return "fpmul";
      case Op::FpDiv: return "fpdiv";
      case Op::FpMov: return "fpmov";
      case Op::Branch: return "br";
      case Op::Load: return "ld";
      case Op::Store: return "st";
      case Op::Prefetch: return "pref";
      case Op::VisAdd: return "vadd";
      case Op::VisMul: return "vmul";
      case Op::VisPdist: return "pdist";
      case Op::VisAlign: return "valign";
      case Op::VisPack: return "vpack";
      case Op::VisGsr: return "vgsr";
      default: return "?";
    }
}

std::string
toString(const Inst &inst)
{
    std::ostringstream out;
    out << opName(inst.op) << " d" << inst.dst;
    for (unsigned i = 0; i < inst.numSrcs; ++i)
        out << " s" << inst.src[i];
    if (inst.isMem())
        out << " @0x" << std::hex << inst.addr << std::dec << "/"
            << unsigned(inst.memSize);
    if (inst.isBranch())
        out << (inst.taken() ? " T" : " N") << " pc" << inst.pc;
    return out.str();
}

void
CountingSink::feed(const Inst &inst)
{
    ++total_;
    ++mix[static_cast<unsigned>(mixClassOf(inst.op))];
    ++ops[static_cast<unsigned>(inst.op)];
}

} // namespace msim::isa
