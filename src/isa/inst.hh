/**
 * @file
 * Dynamic instruction record and opcode classes.
 *
 * msim is execution-driven through a trace-builder DSL: benchmarks do
 * their real computation while emitting one Inst per dynamic operation.
 * An Inst carries everything the timing models need — opcode class,
 * SSA register dependences, memory address/size, and branch outcome —
 * and nothing they don't (no encodings, no architectural register
 * names; renaming is implicit in SSA value ids).
 */

#ifndef MSIM_ISA_INST_HH_
#define MSIM_ISA_INST_HH_

#include <string>

#include "common/types.hh"

namespace msim::isa
{

/**
 * Opcode classes. Scalar classes mirror the latency rows of the paper's
 * Table 2; the Vis* classes mirror the VIS rows and the functional-unit
 * split (one VIS adder, one VIS multiplier).
 */
enum class Op : u8
{
    IntAlu,     ///< integer add/sub/logic/shift/compare (1 cycle)
    IntMul,     ///< integer multiply (7 cycles)
    IntDiv,     ///< integer divide (12 cycles)
    FpAlu,      ///< floating-point add/sub/compare (4 cycles)
    FpMul,      ///< floating-point multiply (4 cycles)
    FpDiv,      ///< floating-point divide (12 cycles, not pipelined)
    FpMov,      ///< FP moves/converts (4 cycles)
    Branch,     ///< conditional/unconditional branch (integer unit)
    Load,       ///< memory load (address generation unit + cache)
    Store,      ///< memory store (non-blocking)
    Prefetch,   ///< software non-binding prefetch into L1
    VisAdd,     ///< packed add/sub, logicals, partitioned compare, edge
    VisMul,     ///< packed multiply family (3 cycles)
    VisPdist,   ///< pixel distance / SAD (3 cycles)
    VisAlign,   ///< alignaddr/faligndata (1 cycle, VIS adder)
    VisPack,    ///< pack/expand/merge subword rearrangement (1 cycle)
    VisGsr,     ///< graphics status register manipulation (1 cycle)
    NumOps
};

constexpr unsigned kNumOps = static_cast<unsigned>(Op::NumOps);

/** Coarse categories used for the paper's Figure 2 instruction mix. */
enum class MixClass : u8 { Fu, Branch, Memory, Vis };

/** Functional-unit classes (Table 2 counts: 2/2/2/1/1). */
enum class FuClass : u8
{
    IntUnit,    ///< integer arithmetic unit
    FpUnit,     ///< floating-point unit
    AddrGen,    ///< address generation unit (drives all memory ops)
    VisAdder,   ///< VIS adder
    VisMul,     ///< VIS multiplier
    NumClasses
};

constexpr unsigned kNumFuClasses = static_cast<unsigned>(FuClass::NumClasses);

/** Per-instruction flags. */
enum InstFlags : u8
{
    kFlagTaken = 1 << 0,       ///< branch outcome: taken
    kFlagPartialStore = 1 << 1 ///< VIS partial (masked) store
};

/** One dynamic instruction. */
struct Inst
{
    Op op = Op::IntAlu;
    u8 memSize = 0;    ///< access width in bytes for Load/Store/Prefetch
    u8 flags = 0;
    u8 numSrcs = 0;
    u32 pc = 0;        ///< static emission-site id (branch predictor index)
    u16 site = 0;      ///< kernel-region id (TraceBuilder::pushSite; 0 = top)
    ValId dst = kNoVal;
    ValId src[3] = {kNoVal, kNoVal, kNoVal};
    Addr addr = 0;     ///< virtual address for memory ops

    bool taken() const { return flags & kFlagTaken; }
    bool isLoad() const { return op == Op::Load; }
    bool isStore() const { return op == Op::Store; }
    bool isPrefetch() const { return op == Op::Prefetch; }
    bool isMem() const { return isLoad() || isStore() || isPrefetch(); }
    bool isBranch() const { return op == Op::Branch; }

    bool
    isVis() const
    {
        return op >= Op::VisAdd && op <= Op::VisGsr;
    }
};

/** Map an opcode to its Figure-2 mix class. */
MixClass mixClassOf(Op op);

/** Map an opcode to the functional unit class that executes it. */
FuClass fuClassOf(Op op);

/** Human-readable opcode name (for debugging and trace dumps). */
const char *opName(Op op);

/** One-line rendering of an instruction. */
std::string toString(const Inst &inst);

/**
 * Consumer of a dynamic instruction stream. Timing cores and counting
 * sinks implement this; the trace builder pushes into it so traces never
 * need to be materialized in memory.
 */
class InstSink
{
  public:
    virtual ~InstSink() = default;

    /** Deliver the next instruction in program order. */
    virtual void feed(const Inst &inst) = 0;

    /**
     * Announce a kernel-region id before any instruction carries it
     * (TraceBuilder::pushSite).  Timing sinks ignore sites entirely;
     * recording sinks keep the id -> name table alongside the stream.
     */
    virtual void defineSite(u16 id, const std::string &name)
    {
        (void)id;
        (void)name;
    }

    /** Signal end of program; the sink drains any buffered work. */
    virtual void finish() = 0;
};

/** Sink that only tallies instruction counts by mix class. */
class CountingSink : public InstSink
{
  public:
    void feed(const Inst &inst) override;
    void finish() override {}

    u64 total() const { return total_; }
    u64 byMix(MixClass c) const { return mix[static_cast<unsigned>(c)]; }
    u64 byOp(Op op) const { return ops[static_cast<unsigned>(op)]; }

  private:
    u64 total_ = 0;
    u64 mix[4] = {0, 0, 0, 0};
    u64 ops[kNumOps] = {};
};

} // namespace msim::isa

#endif // MSIM_ISA_INST_HH_
