#include "isa/timing.hh"

#include "common/logging.hh"

namespace msim::isa
{

OpTiming
timingOf(Op op)
{
    switch (op) {
      case Op::IntAlu: return {1, true};
      case Op::IntMul: return {7, true};
      case Op::IntDiv: return {12, true};
      case Op::FpAlu: return {4, true};
      case Op::FpMul: return {4, true};
      case Op::FpDiv: return {12, false}; // the one non-pipelined unit
      case Op::FpMov: return {4, true};
      case Op::Branch: return {1, true};
      // Memory ops: the latencies here are the address-generation step;
      // cache access time is added by the memory hierarchy.
      case Op::Load: return {1, true};
      case Op::Store: return {1, true};
      case Op::Prefetch: return {1, true};
      case Op::VisAdd: return {1, true};
      case Op::VisMul: return {3, true};
      case Op::VisPdist: return {3, true};
      case Op::VisAlign: return {1, true};
      case Op::VisPack: return {1, true};
      case Op::VisGsr: return {1, true};
      default:
        panic("timingOf: bad op %u", static_cast<unsigned>(op));
    }
}

unsigned
defaultFuCount(FuClass cls, unsigned issue_width)
{
    if (issue_width <= 1)
        return 1; // "we scale the number of functional units to 1 of each"
    switch (cls) {
      case FuClass::IntUnit: return 2;
      case FuClass::FpUnit: return 2;
      case FuClass::AddrGen: return 2;
      case FuClass::VisAdder: return 1;
      case FuClass::VisMul: return 1;
      default:
        panic("defaultFuCount: bad class %u", static_cast<unsigned>(cls));
    }
}

} // namespace msim::isa
