/**
 * @file
 * Tests for the shared traced-codec machinery (jpeg/traced_xform):
 * arena-resident bit I/O, Huffman emission, and the block transform
 * pipelines, cross-checked against the native reference codec.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/inst.hh"
#include "jpeg/codec.hh"
#include "jpeg/dct.hh"
#include "jpeg/traced_xform.hh"
#include "jpeg/zigzag.hh"
#include "prog/trace_builder.hh"

namespace msim::jpeg
{
namespace
{

using isa::CountingSink;
using isa::Op;
using prog::TraceBuilder;

TEST(TracedBits, WriterMatchesNativeBytes)
{
    CountingSink sink;
    TraceBuilder tb(sink);
    const Addr base = tb.alloc(1024, "bits");
    TracedBitWriter traced(tb, base, 1024);
    BitWriter native;

    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        const unsigned len = 1 + rng.nextBelow(16);
        const u32 code =
            static_cast<u32>(rng.next()) & ((1u << len) - 1);
        traced.put(code, len);
        native.put(code, len);
    }
    const size_t n = traced.finish();
    const auto want = native.finish();
    ASSERT_EQ(n, want.size());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(tb.arena().read(base + i, 1), want[i]) << "byte " << i;
    // Bit emission costs instructions (shift/or/flush/store).
    EXPECT_GT(sink.total(), 1000u);
}

TEST(TracedBits, ReaderFollowsNativeDecode)
{
    // Build a table, encode natively, decode via the traced reader.
    std::vector<u64> freq(20, 1);
    for (unsigned i = 0; i < 20; ++i)
        freq[i] += i * 13;
    const HuffTable table = HuffTable::fromFrequencies(freq);

    std::vector<unsigned> syms;
    BitWriter bw;
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        const unsigned s = static_cast<unsigned>(rng.nextBelow(20));
        syms.push_back(s);
        table.encode(bw, s);
    }
    const auto bytes = bw.finish();

    CountingSink sink;
    TraceBuilder tb(sink);
    TracedHuff huff(tb, table);
    const Addr stream = tb.alloc(bytes.size() + 8, "stream");
    TracedBitReader br(tb, bytes, stream);
    for (int i = 0; i < 300; ++i)
        ASSERT_EQ(br.decodeSym(huff), syms[i]) << "sym " << i;
    // Decoding emits the canonical-walk ops and stream loads.
    EXPECT_GT(sink.byOp(Op::Load), 300u);
    EXPECT_GT(sink.byMix(isa::MixClass::Branch), 300u);
}

TEST(TracedXform, ScalarFdctMatchesNativeTransform)
{
    // One 8x8 block through the traced scalar pipeline must equal the
    // native transformPlane arithmetic exactly.
    Plane plane(8, 8);
    Rng rng(3);
    for (unsigned i = 0; i < 64; ++i)
        plane.samples[i] = static_cast<u8>(rng.nextBelow(256));
    const QuantTable q = scaleTable(lumaBaseTable(), 75);

    CountingSink sink;
    TraceBuilder tb(sink);
    TracedTables tables(tb, q, q);
    const Addr src = tb.alloc(64, "px");
    tb.arena().writeBytes(src, plane.samples.data(), 64);
    const Addr dst = tb.alloc(128, "zz");
    emitFdctQuantBlock(tb, prog::Variant::Scalar, tables, false, src, 8,
                       dst);

    const CoeffPlane want = transformPlane(plane, q);
    for (unsigned i = 0; i < 64; ++i) {
        const s16 got = static_cast<s16>(tb.arena().read(dst + 2 * i, 2));
        EXPECT_EQ(got, want.block(0, 0)[i]) << "coeff " << i;
    }
}

TEST(TracedXform, ScalarIdctMatchesNativeReconstruct)
{
    Plane plane(8, 8);
    Rng rng(4);
    for (unsigned i = 0; i < 64; ++i)
        plane.samples[i] = static_cast<u8>(rng.nextBelow(256));
    const QuantTable q = scaleTable(lumaBaseTable(), 75);
    const CoeffPlane coeffs = transformPlane(plane, q);
    const Plane want = reconstructPlane(coeffs, q);

    CountingSink sink;
    TraceBuilder tb(sink);
    TracedTables tables(tb, q, q);
    const Addr src = tb.alloc(128, "zz");
    for (unsigned i = 0; i < 64; ++i)
        tb.arena().write(src + 2 * i, 2,
                         static_cast<u16>(coeffs.block(0, 0)[i]));
    const Addr dst = tb.alloc(64, "px");
    emitIdctBlock(tb, prog::Variant::Scalar, tables, false, src, dst, 8);

    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(tb.arena().read(dst + i, 1), want.samples[i])
            << "pixel " << i;
}

TEST(TracedXform, VisFdctStaysClose)
{
    // The VIS column pass uses 8-bit basis constants; coefficients may
    // differ slightly from the scalar path but must stay close.
    Plane plane(8, 8);
    Rng rng(5);
    for (unsigned i = 0; i < 64; ++i)
        plane.samples[i] = static_cast<u8>(rng.nextBelow(256));
    const QuantTable q = scaleTable(lumaBaseTable(), 75);

    CountingSink sink;
    TraceBuilder tb(sink);
    TracedTables tables(tb, q, q);
    const Addr src = tb.alloc(64, "px");
    tb.arena().writeBytes(src, plane.samples.data(), 64);
    const Addr dst = tb.alloc(128, "zz");
    emitFdctQuantBlock(tb, prog::Variant::Vis, tables, false, src, 8,
                       dst);

    const CoeffPlane want = transformPlane(plane, q);
    for (unsigned i = 0; i < 64; ++i) {
        const s16 got = static_cast<s16>(tb.arena().read(dst + 2 * i, 2));
        EXPECT_NEAR(got, want.block(0, 0)[i], 2) << "coeff " << i;
    }
    EXPECT_GT(sink.byMix(isa::MixClass::Vis), 0u);
}

TEST(TracedXform, ResidualRoundtrip)
{
    // Residual in -> fdct/quant -> idct(residual mode) -> close to the
    // original residual.
    s16 resid[64];
    Rng rng(6);
    for (unsigned i = 0; i < 64; ++i)
        resid[i] = static_cast<s16>(rng.nextBelow(101)) - 50;
    const QuantTable q = []() {
        QuantTable t{};
        t.fill(4);
        return t;
    }();

    CountingSink sink;
    TraceBuilder tb(sink);
    TracedTables tables(tb, q, q);
    const Addr src = tb.alloc(128, "resid");
    for (unsigned i = 0; i < 64; ++i)
        tb.arena().write(src + 2 * i, 2, static_cast<u16>(resid[i]));
    const Addr zz = tb.alloc(128, "zz");
    emitFdctQuantResidual(tb, prog::Variant::Scalar, tables, true, src,
                          8, zz);
    const Addr out = tb.alloc(128, "out");
    emitIdctBlock(tb, prog::Variant::Scalar, tables, true, zz, out, 8,
                  /*residual=*/true);

    for (unsigned i = 0; i < 64; ++i) {
        const s16 got = static_cast<s16>(tb.arena().read(out + 2 * i, 2));
        EXPECT_NEAR(got, resid[i], 6) << "residual " << i;
    }
}

TEST(TracedXform, TablesLiveInArena)
{
    CountingSink sink;
    TraceBuilder tb(sink);
    const QuantTable ql = scaleTable(lumaBaseTable(), 50);
    const QuantTable qc = scaleTable(chromaBaseTable(), 50);
    TracedTables tables(tb, ql, qc);
    // Zig-zag order table readable.
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(tb.arena().read(tables.zigzagAddr() + i, 1),
                  kZigzag[i]);
    // Quant entries: reciprocal, half, q.
    for (unsigned i = 0; i < 64; i += 9) {
        EXPECT_EQ(tb.arena().read(tables.quantEntry(false, i), 4),
                  quantRecip(ql[i]));
        EXPECT_EQ(tb.arena().read(tables.quantEntry(false, i) + 6, 2),
                  ql[i]);
        EXPECT_EQ(tb.arena().read(tables.quantEntry(true, i) + 6, 2),
                  qc[i]);
    }
}

TEST(TracedXform, VisBlockPipelineIsCheaper)
{
    Plane plane(8, 8);
    for (unsigned i = 0; i < 64; ++i)
        plane.samples[i] = static_cast<u8>(i * 4);
    const QuantTable q = scaleTable(lumaBaseTable(), 75);

    auto count = [&](prog::Variant v) {
        CountingSink sink;
        TraceBuilder tb(sink);
        TracedTables tables(tb, q, q);
        const Addr src = tb.alloc(64, "px");
        tb.arena().writeBytes(src, plane.samples.data(), 64);
        const Addr dst = tb.alloc(128, "zz");
        emitFdctQuantBlock(tb, v, tables, false, src, 8, dst);
        return sink.total();
    };
    EXPECT_LT(count(prog::Variant::Vis), count(prog::Variant::Scalar));
}

} // namespace
} // namespace msim::jpeg
