/** @file Tests for the JPEG substrate: DCT, quant, Huffman, codec. */

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "img/synth.hh"
#include "isa/inst.hh"
#include "jpeg/codec.hh"
#include "jpeg/dct.hh"
#include "jpeg/huffman.hh"
#include "jpeg/quant.hh"
#include "jpeg/traced.hh"
#include "jpeg/zigzag.hh"
#include "prog/trace_builder.hh"

namespace msim::jpeg
{
namespace
{

TEST(Dct, RoundtripCloseToIdentity)
{
    Rng rng(1);
    s16 in[64], freq[64], out[64];
    for (int t = 0; t < 50; ++t) {
        for (int i = 0; i < 64; ++i)
            in[i] = static_cast<s16>(rng.nextBelow(256)) - 128;
        fdct8x8(in, freq);
        idct8x8(freq, out);
        for (int i = 0; i < 64; ++i)
            EXPECT_NEAR(out[i], in[i], 3) << "t=" << t << " i=" << i;
    }
}

TEST(Dct, FlatBlockIsDcOnly)
{
    s16 in[64], freq[64];
    for (int i = 0; i < 64; ++i)
        in[i] = 100;
    fdct8x8(in, freq);
    EXPECT_NEAR(freq[0], 800, 8); // 8 * 100 (orthonormal DC gain)
    for (int i = 1; i < 64; ++i)
        EXPECT_NEAR(freq[i], 0, 2);
}

TEST(Dct, CosineConcentratesEnergy)
{
    // A horizontal cosine at basis frequency 2 concentrates in (0,2).
    s16 in[64], freq[64];
    const double pi = std::acos(-1.0);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            in[y * 8 + x] = static_cast<s16>(
                100 * std::cos((2 * x + 1) * 2 * pi / 16.0));
    fdct8x8(in, freq);
    int maxi = 0;
    for (int i = 1; i < 64; ++i)
        if (std::abs(freq[i]) > std::abs(freq[maxi]))
            maxi = i;
    EXPECT_EQ(maxi, 2); // row 0, column 2
}

TEST(Zigzag, PermutationIsABijection)
{
    bool seen[64] = {};
    for (int i = 0; i < 64; ++i) {
        EXPECT_LT(kZigzag[i], 64);
        EXPECT_FALSE(seen[kZigzag[i]]);
        seen[kZigzag[i]] = true;
        EXPECT_EQ(kUnzigzag[kZigzag[i]], i);
    }
    // Classic prefix: 0, 1, 8, 16, 9, 2, 3, 10 ...
    EXPECT_EQ(kZigzag[0], 0);
    EXPECT_EQ(kZigzag[1], 1);
    EXPECT_EQ(kZigzag[2], 8);
    EXPECT_EQ(kZigzag[3], 16);
    EXPECT_EQ(kZigzag[4], 9);
    EXPECT_EQ(kZigzag[63], 63);
}

TEST(Zigzag, RoundtripReorders)
{
    s16 in[64], zz[64], back[64];
    for (int i = 0; i < 64; ++i)
        in[i] = static_cast<s16>(i * 3 - 50);
    toZigzag(in, zz);
    fromZigzag(zz, back);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(back[i], in[i]);
}

TEST(Quant, TablesSane)
{
    const QuantTable &l = lumaBaseTable();
    EXPECT_EQ(l[0], 16);
    for (int i = 0; i < 64; ++i)
        EXPECT_GE(l[i], 1);
    const QuantTable q90 = scaleTable(l, 90);
    const QuantTable q10 = scaleTable(l, 10);
    EXPECT_LT(q90[5], q10[5]); // higher quality -> finer quantization
}

TEST(Quant, QuantDequantApproximatesValue)
{
    Rng rng(2);
    for (int t = 0; t < 1000; ++t) {
        const s32 c = static_cast<s32>(rng.nextBelow(2048)) - 1024;
        const u16 q = static_cast<u16>(1 + rng.nextBelow(120));
        const s16 qv = quantOne(c, q);
        const s32 back = dequantOne(qv, q);
        EXPECT_LE(std::abs(back - c), q) << "c=" << c << " q=" << q;
    }
}

TEST(Quant, SignSymmetry)
{
    for (u16 q : {1, 3, 16, 99}) {
        for (s32 c = 0; c < 500; c += 7)
            EXPECT_EQ(quantOne(-c, q), -quantOne(c, q));
    }
}

TEST(Huffman, BitIoRoundtrip)
{
    BitWriter bw;
    bw.put(0b101, 3);
    bw.put(0b0110, 4);
    bw.put(0xabc, 12);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(br.getBits(3), 0b101u);
    EXPECT_EQ(br.getBits(4), 0b0110u);
    EXPECT_EQ(br.getBits(12), 0xabcu);
}

TEST(Huffman, CanonicalCodesArePrefixFree)
{
    std::vector<u64> freq(16);
    for (unsigned i = 0; i < 16; ++i)
        freq[i] = 1 + i * i;
    const HuffTable t = HuffTable::fromFrequencies(freq);
    for (unsigned a = 0; a < 16; ++a) {
        for (unsigned b = 0; b < 16; ++b) {
            if (a == b)
                continue;
            const unsigned la = t.lenOf(a), lb = t.lenOf(b);
            ASSERT_GT(la, 0u);
            if (la <= lb) {
                // a's code must not be a prefix of b's code.
                EXPECT_NE(t.codeOf(a), t.codeOf(b) >> (lb - la));
            }
        }
    }
}

TEST(Huffman, EncodeDecodeRandomStreams)
{
    Rng rng(3);
    std::vector<u64> freq(40, 0);
    for (unsigned i = 0; i < 40; ++i)
        freq[i] = 1 + rng.nextBelow(1000);
    const HuffTable t = HuffTable::fromFrequencies(freq);

    std::vector<unsigned> syms;
    BitWriter bw;
    for (int i = 0; i < 5000; ++i) {
        const unsigned s = static_cast<unsigned>(rng.nextBelow(40));
        syms.push_back(s);
        t.encode(bw, s);
    }
    const auto bytes = bw.finish();
    BitReader br(bytes);
    for (int i = 0; i < 5000; ++i)
        ASSERT_EQ(t.decode(br), syms[i]) << "at " << i;
}

TEST(Huffman, FrequentSymbolsGetShortCodes)
{
    std::vector<u64> freq(10, 1);
    freq[4] = 100000;
    const HuffTable t = HuffTable::fromFrequencies(freq);
    for (unsigned s = 0; s < 10; ++s) {
        if (s != 4) {
            EXPECT_LE(t.lenOf(4), t.lenOf(s));
        }
    }
}

TEST(Huffman, LengthLimitedTo16)
{
    // Exponential frequencies would produce deep trees without the
    // length limit.
    std::vector<u64> freq(32);
    u64 f = 1;
    for (unsigned i = 0; i < 32; ++i) {
        freq[i] = f;
        f = f * 2 + 1;
    }
    const HuffTable t = HuffTable::fromFrequencies(freq);
    for (unsigned s = 0; s < 32; ++s) {
        EXPECT_GE(t.lenOf(s), 1u);
        EXPECT_LE(t.lenOf(s), kMaxCodeLen);
    }
}

TEST(Huffman, SingleSymbolAlphabet)
{
    std::vector<u64> freq(8, 0);
    freq[3] = 5;
    const HuffTable t = HuffTable::fromFrequencies(freq);
    EXPECT_EQ(t.lenOf(3), 1u);
    BitWriter bw;
    t.encode(bw, 3);
    const auto bytes = bw.finish();
    BitReader br(bytes);
    EXPECT_EQ(t.decode(br), 3u);
}

TEST(Huffman, MagnitudeCoding)
{
    for (int v = -255; v <= 255; ++v) {
        const unsigned cat = magnitudeCategory(v);
        EXPECT_EQ(magnitudeExtend(magnitudeBits(v, cat), cat), v);
    }
    EXPECT_EQ(magnitudeCategory(0), 0u);
    EXPECT_EQ(magnitudeCategory(1), 1u);
    EXPECT_EQ(magnitudeCategory(-1), 1u);
    EXPECT_EQ(magnitudeCategory(255), 8u);
}

TEST(Color, ForwardInverseRoundtrip)
{
    Rng rng(4);
    for (int t = 0; t < 2000; ++t) {
        const int r = static_cast<int>(rng.nextBelow(256));
        const int g = static_cast<int>(rng.nextBelow(256));
        const int b = static_cast<int>(rng.nextBelow(256));
        const int y = yOf(r, g, b), cb = cbOf(r, g, b),
                  cr = crOf(r, g, b);
        EXPECT_NEAR(rOf(y, cr), r, 8);
        EXPECT_NEAR(gOf(y, cb, cr), g, 8);
        EXPECT_NEAR(bOf(y, cb), b, 8);
    }
}

TEST(Color, Ycc420ShapesAndPadding)
{
    const img::Image im = img::makeTestImage(36, 20, 3, 5);
    const Ycc420 ycc = rgbToYcc420(im);
    EXPECT_EQ(ycc.y.w, 36u);
    EXPECT_EQ(ycc.cb.w, 18u);
    EXPECT_EQ(ycc.cb.h, 10u);
    const Plane padded = padToBlocks(ycc.cb);
    EXPECT_EQ(padded.w, 24u);
    EXPECT_EQ(padded.h, 16u);
    // Replicated edges.
    EXPECT_EQ(padded.at(23, 3), ycc.cb.at(17, 3));
    EXPECT_EQ(padded.at(5, 15), ycc.cb.at(5, 9));
}

TEST(Codec, BaselineRoundtripQuality)
{
    const img::Image im = img::makeTestImage(64, 48, 3, 6);
    const EncodedJpeg enc = encodeJpeg(im, /*progressive=*/false, 75);
    EXPECT_EQ(enc.scans.size(), 1u);
    const img::Image out = decodeJpeg(enc);
    EXPECT_GT(img::psnr(im, out), 26.0);
}

TEST(Codec, ProgressiveMatchesBaselineQuality)
{
    const img::Image im = img::makeTestImage(64, 48, 3, 7);
    const img::Image base = decodeJpeg(encodeJpeg(im, false, 75));
    const EncodedJpeg enc = encodeJpeg(im, true, 75);
    EXPECT_EQ(enc.scans.size(), 5u);
    const img::Image prog = decodeJpeg(enc);
    // Same coefficients, different entropy organization: identical.
    EXPECT_EQ(img::maxAbsDiff(base, prog), 0u);
}

TEST(Codec, QualityKnobChangesSizeAndFidelity)
{
    const img::Image im = img::makeTestImage(64, 48, 3, 8);
    const EncodedJpeg lo = encodeJpeg(im, false, 30);
    const EncodedJpeg hi = encodeJpeg(im, false, 92);
    auto total_bits = [](const EncodedJpeg &e) {
        size_t n = 0;
        for (const auto &s : e.scans)
            n += s.bits.size();
        return n;
    };
    EXPECT_LT(total_bits(lo), total_bits(hi));
    EXPECT_LT(img::psnr(im, decodeJpeg(lo)), img::psnr(im, decodeJpeg(hi)));
}

TEST(Codec, ProgressiveScansCoverSpectrum)
{
    const auto plan = progressiveScanPlan();
    EXPECT_EQ(plan[0].first, kAllPlanes);
    EXPECT_EQ(plan[0].second.first, 0u);
    bool luma_covered[64] = {};
    for (const auto &[plane, band] : plan) {
        if (plane == kAllPlanes || plane == 0)
            for (unsigned i = band.first; i <= band.second; ++i)
                luma_covered[i] = true;
    }
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_TRUE(luma_covered[i]) << "coefficient " << i;
}

// --- Traced benchmarks (self-verifying; small images for speed) ------

class TracedJpegTest
    : public ::testing::TestWithParam<std::tuple<bool, prog::Variant>>
{
};

TEST_P(TracedJpegTest, EncoderVerifies)
{
    const auto [progressive, variant] = GetParam();
    isa::CountingSink sink;
    prog::TraceBuilder tb(sink);
    runCjpeg(tb, variant, progressive, 48, 32);
    EXPECT_GT(sink.total(), 10000u);
}

TEST_P(TracedJpegTest, DecoderVerifies)
{
    const auto [progressive, variant] = GetParam();
    isa::CountingSink sink;
    prog::TraceBuilder tb(sink);
    runDjpeg(tb, variant, progressive, 48, 32);
    EXPECT_GT(sink.total(), 10000u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, TracedJpegTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(prog::Variant::Scalar,
                                         prog::Variant::Vis)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "prog" : "np") +
               (std::get<1>(info.param) == prog::Variant::Scalar
                    ? "_scalar"
                    : "_vis");
    });

TEST(TracedJpeg, VisReducesInstructionCount)
{
    isa::CountingSink s1, s2;
    prog::TraceBuilder t1(s1), t2(s2);
    runCjpeg(t1, prog::Variant::Scalar, false, 48, 32);
    runCjpeg(t2, prog::Variant::Vis, false, 48, 32);
    EXPECT_LT(s2.total(), s1.total());
    // But not dramatically: Huffman/quant/zigzag stay scalar (paper:
    // cjpeg only drops to ~85%).
    EXPECT_GT(double(s2.total()) / double(s1.total()), 0.5);
}

TEST(TracedJpeg, ProgressiveEmitsMorePassesThanBaseline)
{
    isa::CountingSink s1, s2;
    prog::TraceBuilder t1(s1), t2(s2);
    runCjpeg(t1, prog::Variant::Scalar, false, 48, 32);
    runCjpeg(t2, prog::Variant::Scalar, true, 48, 32);
    EXPECT_GT(s2.total(), s1.total());
}

} // namespace
} // namespace msim::jpeg
