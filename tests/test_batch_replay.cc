/**
 * @file
 * Batched multi-config replay: sim::replayTraceBatch must be counter-
 * and timestamp-exact against sequential sim::replayTrace for every
 * benchmark × variant × sweep config, including the edge cases the
 * chunked lockstep driver could plausibly get wrong (empty and
 * one-instruction traces, one-config batches, duplicate configs,
 * fallback configs mixed into a group, chunk-boundary trace lengths)
 * and the runJobs group-splitting path.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "cpu/batch_replay_engine.hh"
#include "kernels/addition.hh"
#include "prog/recorded_trace.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim::sim
{
namespace
{

using core::Job;
using prog::Variant;

/** Assert every RunResult field matches exactly (doubles included: the
 *  lockstep path must reproduce the same per-cycle charge sequence). */
void
expectIdentical(const RunResult &seq, const RunResult &batch,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(seq.exec.cycles, batch.exec.cycles);
    EXPECT_EQ(seq.exec.retired, batch.exec.retired);
    EXPECT_EQ(seq.exec.busy, batch.exec.busy);
    EXPECT_EQ(seq.exec.fuStall, batch.exec.fuStall);
    EXPECT_EQ(seq.exec.memL1Hit, batch.exec.memL1Hit);
    EXPECT_EQ(seq.exec.memL1Miss, batch.exec.memL1Miss);
    EXPECT_EQ(seq.exec.mixFu, batch.exec.mixFu);
    EXPECT_EQ(seq.exec.mixBranch, batch.exec.mixBranch);
    EXPECT_EQ(seq.exec.mixMemory, batch.exec.mixMemory);
    EXPECT_EQ(seq.exec.mixVis, batch.exec.mixVis);
    EXPECT_EQ(seq.exec.branches, batch.exec.branches);
    EXPECT_EQ(seq.exec.mispredicts, batch.exec.mispredicts);
    EXPECT_EQ(seq.exec.loadsL1, batch.exec.loadsL1);
    EXPECT_EQ(seq.exec.loadsL2, batch.exec.loadsL2);
    EXPECT_EQ(seq.exec.loadsMem, batch.exec.loadsMem);
    EXPECT_EQ(seq.exec.prefetchesIssued, batch.exec.prefetchesIssued);
    EXPECT_EQ(seq.exec.prefetchesDropped, batch.exec.prefetchesDropped);

    EXPECT_EQ(seq.l1.accesses, batch.l1.accesses);
    EXPECT_EQ(seq.l1.hits, batch.l1.hits);
    EXPECT_EQ(seq.l1.misses, batch.l1.misses);
    EXPECT_EQ(seq.l1.writebacks, batch.l1.writebacks);
    EXPECT_EQ(seq.l1.prefetchDrops, batch.l1.prefetchDrops);
    EXPECT_EQ(seq.l1.combined, batch.l1.combined);
    EXPECT_EQ(seq.l1.blocked, batch.l1.blocked);
    EXPECT_EQ(seq.l2.accesses, batch.l2.accesses);
    EXPECT_EQ(seq.l2.hits, batch.l2.hits);
    EXPECT_EQ(seq.l2.misses, batch.l2.misses);
    EXPECT_EQ(seq.l2.writebacks, batch.l2.writebacks);

    EXPECT_EQ(seq.tbInstrs, batch.tbInstrs);
    EXPECT_EQ(seq.visOps, batch.visOps);
    EXPECT_EQ(seq.visOverheadOps, batch.visOverheadOps);
}

/** Batched replay vs one sequential replay per machine, same order. */
void
expectBatchMatchesSequential(const prog::RecordedTrace &trace,
                             const std::vector<MachineConfig> &machines,
                             u64 chunkInstructions = 0)
{
    const auto batch = replayTraceBatch(trace, machines, chunkInstructions);
    ASSERT_EQ(batch.size(), machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        const auto seq = replayTrace(trace, machines[i]);
        expectIdentical(seq, batch[i],
                        "machine #" + std::to_string(i) + " chunk " +
                            std::to_string(chunkInstructions));
    }
}

/**
 * Event-skip on vs off, sequential and batched, counter-exact.  The
 * clock-jumping scheduler must be bit-identical to the per-cycle loop
 * on the same trace and machine — and a batch pairing a skipping lane
 * with its per-cycle twin must pause both at the same chunk limits and
 * still agree.  tools/audit_fuzz --mode skip emits repro tests calling
 * this helper; keep the signature stable.
 */
void
expectSkipOnOffIdentical(const prog::RecordedTrace &trace,
                         const MachineConfig &machine, u64 chunk = 0)
{
    const MachineConfig off = withEventSkip(machine, false);
    const MachineConfig on = withEventSkip(machine, true);
    const auto seqOff = replayTrace(trace, off);
    const auto seqOn = replayTrace(trace, on);
    expectIdentical(seqOff, seqOn, "sequential skip-on vs skip-off");
    const std::vector<MachineConfig> lanes = {off, on};
    const auto batch = replayTraceBatch(trace, lanes, chunk);
    ASSERT_EQ(batch.size(), 2u);
    expectIdentical(seqOff, batch[0],
                    "batch skip-off lane, chunk " + std::to_string(chunk));
    expectIdentical(seqOff, batch[1],
                    "batch skip-on lane, chunk " + std::to_string(chunk));
}

Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

/** The sweep shapes the paper tables use: cache sizes, MSHR counts,
 *  issue widths, predictor sizes — all batched into one group. */
std::vector<MachineConfig>
sweepConfigs()
{
    std::vector<MachineConfig> machines = {
        outOfOrder4Way(), withL1Size(1 << 10), withL1Size(4 << 10),
        withL2Size(128 << 10)};
    MachineConfig mshr_limited = outOfOrder4Way();
    mshr_limited.mem.l1.numMshrs = 1;
    mshr_limited.mem.l2.numMshrs = 2;
    machines.push_back(mshr_limited);
    MachineConfig narrow = outOfOrder4Way();
    narrow.core.issueWidth = 2;
    narrow.core.windowSize = 16;
    machines.push_back(narrow);
    MachineConfig tiny_predictor = outOfOrder4Way();
    tiny_predictor.core.predictorEntries = 16;
    machines.push_back(tiny_predictor);
    return machines;
}

void
checkBenchmark(const std::string &name,
               const std::vector<MachineConfig> &machines)
{
    for (Variant variant :
         {Variant::Scalar, Variant::Vis, Variant::VisPrefetch}) {
        SCOPED_TRACE(name + "/" +
                     std::to_string(static_cast<int>(variant)));
        const MachineConfig base = outOfOrder4Way();
        const auto trace = recordTrace(generatorFor(name, variant),
                                       base.skewArrays, base.visFeatures);
        expectBatchMatchesSequential(trace, machines);
    }
}

TEST(BatchReplay, ImageKernelsFullSweep)
{
    for (const char *name : {"addition", "blend", "conv", "dotprod",
                             "scaling", "thresh"})
        checkBenchmark(name, sweepConfigs());
}

TEST(BatchReplay, ExtraKernelsFullSweep)
{
    for (const char *name :
         {"copy", "invert", "sepconv", "lookup", "transpose", "erode"})
        checkBenchmark(name, sweepConfigs());
}

/** Codecs are the expensive traces; a compact config set keeps the
 *  suite fast while still crossing cache size and issue width. */
TEST(BatchReplay, JpegCodecs)
{
    std::vector<MachineConfig> machines = {outOfOrder4Way(),
                                           withL1Size(4 << 10)};
    MachineConfig narrow = outOfOrder4Way();
    narrow.core.issueWidth = 2;
    machines.push_back(narrow);
    for (const char *name : {"cjpeg", "djpeg", "cjpeg-np", "djpeg-np"})
        checkBenchmark(name, machines);
}

TEST(BatchReplay, MpegCodecs)
{
    std::vector<MachineConfig> machines = {outOfOrder4Way(),
                                           withL1Size(4 << 10)};
    MachineConfig narrow = outOfOrder4Way();
    narrow.core.issueWidth = 2;
    machines.push_back(narrow);
    for (const char *name : {"mpeg-enc", "mpeg-dec"})
        checkBenchmark(name, machines);
}

TEST(BatchReplay, EmptyTrace)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace([](prog::TraceBuilder &) {},
                                   base.skewArrays, base.visFeatures);
    ASSERT_EQ(trace.instCount(), 0u);
    expectBatchMatchesSequential(trace, sweepConfigs());
}

TEST(BatchReplay, SingleInstructionTrace)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(
        [](prog::TraceBuilder &tb) { tb.add(tb.imm(1), tb.imm(2)); },
        base.skewArrays, base.visFeatures);
    ASSERT_EQ(trace.instCount(), 1u);
    expectBatchMatchesSequential(trace, sweepConfigs());
    expectBatchMatchesSequential(trace, sweepConfigs(), 1);
}

TEST(BatchReplay, SingleConfigBatch)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(
        [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 256, 32, 2);
        },
        base.skewArrays, base.visFeatures);
    expectBatchMatchesSequential(trace, {withL1Size(1 << 10)});
}

/** Duplicate configs must not share any lane state: every copy gets
 *  its own engine and hierarchy and reports identical numbers. */
TEST(BatchReplay, DuplicateConfigs)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(
        [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 256, 32, 2);
        },
        base.skewArrays, base.visFeatures);
    const std::vector<MachineConfig> machines = {
        withL1Size(1 << 10), withL1Size(1 << 10), outOfOrder4Way(),
        withL1Size(1 << 10)};
    const auto batch = replayTraceBatch(trace, machines);
    expectBatchMatchesSequential(trace, machines);
    expectIdentical(batch[0], batch[1], "duplicate 0 vs 1");
    expectIdentical(batch[0], batch[3], "duplicate 0 vs 3");
}

/** In-order and reference-engine configs fall back to sequential
 *  replay inside the same call, interleaved with batched lanes, and
 *  the result order must still match the input order. */
TEST(BatchReplay, MixedFallbackConfigs)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(
        [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Scalar, 256, 32, 2);
        },
        base.skewArrays, base.visFeatures);
    const std::vector<MachineConfig> machines = {
        inOrder1Way(), outOfOrder4Way(), asReference(outOfOrder4Way()),
        inOrder4Way(), withL1Size(1 << 10)};
    expectBatchMatchesSequential(trace, machines);
}

/** Chunk boundaries falling before, on, and after the trace length,
 *  plus degenerate one- and two-instruction chunks. */
TEST(BatchReplay, ChunkBoundarySizes)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(
        [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 64, 8, 1);
        },
        base.skewArrays, base.visFeatures);
    const u64 n = trace.instCount();
    ASSERT_GT(n, 2u);
    const std::vector<MachineConfig> machines = {outOfOrder4Way(),
                                                 withL1Size(1 << 10)};
    for (const u64 chunk : {u64{1}, u64{2}, n - 1, n, n + 1, u64{0}})
        expectBatchMatchesSequential(trace, machines, chunk);
}

/** A single trace group bigger than the thread count must split into
 *  slices whose results are indistinguishable from sequential replay. */
TEST(BatchReplay, RunJobsGroupLargerThanThreads)
{
    std::vector<Job> jobs;
    for (u32 size : {1u << 10, 2u << 10, 4u << 10, 8u << 10, 16u << 10,
                     32u << 10, 64u << 10})
        jobs.push_back({"conv", Variant::Vis, withL1Size(size)});

    const auto batched = core::runJobs(jobs, 2, core::JobMode::Recorded);
    ASSERT_EQ(batched.size(), jobs.size());

    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(generatorFor("conv", Variant::Vis),
                                   base.skewArrays, base.visFeatures);
    for (size_t i = 0; i < jobs.size(); ++i) {
        const auto seq = replayTrace(trace, jobs[i].machine);
        expectIdentical(seq, batched[i], "job #" + std::to_string(i));
    }
}

/** Every paper sweep shape, with the clock allowed to jump: skip-on
 *  must match skip-off bit-exactly on a miss-heavy kernel trace. */
TEST(EventSkip, SweepConfigsIdentical)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace(generatorFor("conv", Variant::Vis),
                                   base.skewArrays, base.visFeatures);
    for (const MachineConfig &m : sweepConfigs())
        expectSkipOnOffIdentical(trace, m);
}

/** Variants stress different horizon sources (scalar: FU latency
 *  chains; VIS: partitioned ops; prefetch: MSHR pressure), and tiny
 *  chunks force jump/pause interleavings at every alignment. */
TEST(EventSkip, VariantsAndChunkSizes)
{
    const MachineConfig small = withL1Size(1 << 10);
    for (Variant variant :
         {Variant::Scalar, Variant::Vis, Variant::VisPrefetch}) {
        SCOPED_TRACE(std::to_string(static_cast<int>(variant)));
        const auto trace =
            recordTrace(generatorFor("addition", variant),
                        small.skewArrays, small.visFeatures);
        for (const u64 chunk : {u64{1}, u64{7}, u64{0}})
            expectSkipOnOffIdentical(trace, small, chunk);
    }
}

/** Degenerate traces: no instruction ever dispatches, or a single
 *  instruction drains the machine — the horizon must terminate the
 *  run, not deadlock or overshoot. */
TEST(EventSkip, DegenerateTraces)
{
    const MachineConfig base = outOfOrder4Way();
    const auto empty = recordTrace([](prog::TraceBuilder &) {},
                                   base.skewArrays, base.visFeatures);
    expectSkipOnOffIdentical(empty, base);

    const auto one = recordTrace(
        [](prog::TraceBuilder &tb) { tb.add(tb.imm(1), tb.imm(2)); },
        base.skewArrays, base.visFeatures);
    expectSkipOnOffIdentical(one, base);
    expectSkipOnOffIdentical(one, base, 1);
}

/** Trace prefixes are what the fuzzer's shrinker replays; the skip
 *  bit-identity must hold on them too (prefix() must produce a
 *  self-consistent trace, not just a shorter one). */
TEST(EventSkip, TracePrefixesIdentical)
{
    const MachineConfig small = withL1Size(1 << 10);
    const auto trace =
        recordTrace(generatorFor("dotprod", Variant::Vis),
                    small.skewArrays, small.visFeatures);
    const u64 n = trace.instCount();
    ASSERT_GT(n, 16u);
    for (const u64 len : {u64{1}, u64{2}, n / 3, n / 2, n - 1, n})
        expectSkipOnOffIdentical(trace.prefix(len), small);
}

/** MSHR-starved and narrow-window machines have the densest gating
 *  (memq frees and branch resolves dominate the horizon); jumps must
 *  stay sound under both. */
TEST(EventSkip, GatedMachinesIdentical)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace =
        recordTrace(generatorFor("mpeg-dec", Variant::Vis),
                    base.skewArrays, base.visFeatures);
    MachineConfig mshr_limited = withL1Size(1 << 10);
    mshr_limited.mem.l1.numMshrs = 1;
    mshr_limited.mem.l2.numMshrs = 2;
    expectSkipOnOffIdentical(trace, mshr_limited);

    MachineConfig narrow = outOfOrder4Way();
    narrow.core.issueWidth = 2;
    narrow.core.windowSize = 16;
    expectSkipOnOffIdentical(trace, narrow);
}

/** Naive reference for minActiveLane, deliberately branchy. */
u64
naiveMinActiveLane(const std::vector<u8> &running,
                   const std::vector<u64> &values)
{
    u64 m = ~u64{0};
    for (size_t k = 0; k < running.size(); ++k) {
        if (running[k] && values[k] < m)
            m = values[k];
    }
    return m;
}

/** Deterministic xorshift for the property tests. */
u64
nextRand(u64 &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

/** The edge cases the SIMD min-reduction could plausibly get wrong:
 *  no lanes, a single lane, all-lanes-inactive, lane counts straddling
 *  every vector-width boundary — checked against the naive loop on
 *  both the dispatched and the forced-scalar table. */
TEST(MinActiveLane, EdgeCasesMatchNaiveLoop)
{
    using cpu::BatchReplayEngine;

    // Empty spans: no active lane.
    EXPECT_EQ(BatchReplayEngine::minActiveLane({}, {}), ~u64{0});

    // Single-lane batch, running and finished.
    EXPECT_EQ(BatchReplayEngine::minActiveLane(std::vector<u8>{1},
                                               std::vector<u64>{42}),
              42u);
    EXPECT_EQ(BatchReplayEngine::minActiveLane(std::vector<u8>{0},
                                               std::vector<u64>{42}),
              ~u64{0});

    u64 rng = 0x9e3779b97f4a7c15ull;
    for (size_t n = 0; n <= 257; ++n) {
        std::vector<u8> running(n);
        std::vector<u64> values(n);

        // All lanes inactive: must be ~0 regardless of values.
        for (size_t k = 0; k < n; ++k)
            values[k] = nextRand(rng);
        EXPECT_EQ(BatchReplayEngine::minActiveLane(running, values),
                  ~u64{0})
            << "all-inactive n=" << n;

        // Random running masks at every width (covers non-multiples of
        // each vector width and extreme values including ~0 and 0).
        for (int rep = 0; rep < 8; ++rep) {
            for (size_t k = 0; k < n; ++k) {
                running[k] = static_cast<u8>(nextRand(rng) & 1);
                const u64 r = nextRand(rng);
                values[k] = (r & 7) == 0   ? ~u64{0}
                            : (r & 7) == 1 ? 0
                                           : r;
            }
            const u64 expect = naiveMinActiveLane(running, values);
            EXPECT_EQ(BatchReplayEngine::minActiveLane(running, values),
                      expect)
                << "dispatched n=" << n << " rep=" << rep;
            const auto guard = withSimd(false);
            EXPECT_EQ(BatchReplayEngine::minActiveLane(running, values),
                      expect)
                << "forced-scalar n=" << n << " rep=" << rep;
        }
    }
}

/** Whole-batch A/B: native dispatch vs forced scalar, field-exact on a
 *  full sweep group. Any divergence localizes to a vector kernel. */
TEST(BatchReplay, SimdVsScalarDispatchIdentical)
{
    if (simd::detectedLevel() == simd::Level::Scalar)
        GTEST_SKIP() << "host has no vector ISA to compare against";
    const MachineConfig base = outOfOrder4Way();
    const auto machines = sweepConfigs();
    for (const char *name : {"addition", "conv", "mpeg-dec"}) {
        const auto trace =
            recordTrace(generatorFor(name, Variant::Vis),
                        base.skewArrays, base.visFeatures);
        std::vector<RunResult> native, scalar;
        {
            const auto guard = withSimd(true);
            native = replayTraceBatch(trace, machines, 0);
        }
        {
            const auto guard = withSimd(false);
            scalar = replayTraceBatch(trace, machines, 0);
        }
        ASSERT_EQ(native.size(), scalar.size());
        for (size_t i = 0; i < native.size(); ++i)
            expectIdentical(native[i], scalar[i],
                            std::string(name) + " lane " +
                                std::to_string(i));
    }
}

} // namespace
} // namespace msim::sim
