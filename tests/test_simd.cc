/**
 * @file
 * The host-SIMD kernel layer (common/simd.hh): every dispatched kernel
 * must be bit-identical to its scalar reference over randomized inputs,
 * on the host's detected table, the forced-scalar table, and every
 * intermediate level opsFor() can resolve.  Sized kernels run at widths
 * 1..257 so each vector width's main-loop/tail split is crossed many
 * times; fixed-64 kernels run under random masks including the empty,
 * single-bit and full masks.  Also pins the dispatch plumbing itself:
 * level parsing, clamping, and ScopedLevel nesting.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.hh"

namespace msim::simd
{
namespace
{

u64
nextRand(u64 &state)
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

/** Random u64 biased toward the compare-sensitive extremes. */
u64
skewedValue(u64 &rng)
{
    const u64 r = nextRand(rng);
    switch (r & 7) {
      case 0: return 0;
      case 1: return ~u64{0};
      case 2: return static_cast<u64>(1) << 63; // sign-bit boundary
      case 3: return (static_cast<u64>(1) << 63) - 1;
      default: return r;
    }
}

/** Random 64-bit mask including empty / single-bit / full shapes. */
u64
skewedMask(u64 &rng)
{
    const u64 r = nextRand(rng);
    switch (r & 7) {
      case 0: return 0;
      case 1: return u64{1} << (nextRand(rng) & 63);
      case 2: return ~u64{0};
      default: return nextRand(rng) & nextRand(rng); // sparse
    }
}

/** The tables under test: the active one plus every resolvable level.
 *  Duplicates are fine (scalar hosts test scalar repeatedly). */
std::vector<const Ops *>
tablesUnderTest()
{
    std::vector<const Ops *> tables = {&ops()};
    for (Level l : {Level::Scalar, Level::SSE2, Level::AVX2, Level::NEON})
        tables.push_back(&opsFor(l));
    return tables;
}

TEST(SimdDispatch, LevelsResolveAndClamp)
{
    // The detected level's table reports itself, and every opsFor()
    // result is something the host actually supports.
    EXPECT_EQ(opsFor(detectedLevel()).level, detectedLevel());
    EXPECT_EQ(opsFor(Level::Scalar).level, Level::Scalar);
    for (Level l : {Level::SSE2, Level::AVX2, Level::NEON}) {
        const Level got = opsFor(l).level;
        EXPECT_TRUE(got == l || got == Level::Scalar ||
                    (l == Level::AVX2 && got == Level::SSE2))
            << "unexpected clamp " << levelName(l) << " -> "
            << levelName(got);
    }
    for (const char *name :
         {"scalar", "sse2", "avx2", "neon", "unknown"})
        EXPECT_NE(levelName(opsFor(detectedLevel()).level), nullptr)
            << name;
}

TEST(SimdDispatch, ScopedLevelNestsAndRestores)
{
    const Level base = activeLevel();
    {
        ScopedLevel outer(Level::Scalar);
        EXPECT_EQ(activeLevel(), Level::Scalar);
        EXPECT_EQ(ops().level, Level::Scalar);
        {
            ScopedLevel inner(detectedLevel());
            EXPECT_EQ(activeLevel(), detectedLevel());
        }
        EXPECT_EQ(activeLevel(), Level::Scalar);
    }
    EXPECT_EQ(activeLevel(), base);
}

TEST(SimdKernels, MinActiveU64MatchesScalar)
{
    u64 rng = 0x123456789abcdef1ull;
    for (size_t n = 0; n <= 257; ++n) {
        std::vector<u8> running(n + 1);
        std::vector<u64> values(n + 1);
        for (int rep = 0; rep < 6; ++rep) {
            for (size_t i = 0; i < n; ++i) {
                running[i] = static_cast<u8>(nextRand(rng) & 1);
                values[i] = skewedValue(rng);
            }
            const u64 expect =
                scalar::minActiveU64(running.data(), values.data(), n);
            for (const Ops *t : tablesUnderTest())
                EXPECT_EQ(t->minActiveU64(running.data(), values.data(),
                                          n),
                          expect)
                    << levelName(t->level) << " n=" << n;
        }
        // All-inactive at this width.
        std::memset(running.data(), 0, n);
        for (const Ops *t : tablesUnderTest())
            EXPECT_EQ(t->minActiveU64(running.data(), values.data(), n),
                      ~u64{0})
                << levelName(t->level) << " all-inactive n=" << n;
    }
}

TEST(SimdKernels, LeBitmap64MatchesScalar)
{
    u64 rng = 0x2222222222222221ull;
    u64 values[64];
    for (int rep = 0; rep < 400; ++rep) {
        for (u64 &v : values)
            v = skewedValue(rng);
        const u64 threshold = skewedValue(rng);
        const u64 expect = scalar::leBitmap64(values, threshold);
        for (const Ops *t : tablesUnderTest())
            EXPECT_EQ(t->leBitmap64(values, threshold), expect)
                << levelName(t->level) << " rep=" << rep;
    }
}

TEST(SimdKernels, MinMaskedU64MatchesScalar)
{
    u64 rng = 0x3333333333333331ull;
    u64 values[64];
    for (int rep = 0; rep < 400; ++rep) {
        for (u64 &v : values)
            v = skewedValue(rng);
        const u64 mask = skewedMask(rng);
        const u64 expect = scalar::minMaskedU64(values, mask);
        for (const Ops *t : tablesUnderTest())
            EXPECT_EQ(t->minMaskedU64(values, mask), expect)
                << levelName(t->level) << " rep=" << rep;
    }
}

TEST(SimdKernels, MaxBroadcastU64MatchesScalar)
{
    u64 rng = 0x4444444444444441ull;
    u64 base[64];
    for (int rep = 0; rep < 400; ++rep) {
        for (u64 &v : base)
            v = skewedValue(rng);
        const u64 mask = skewedMask(rng);
        const u64 t64 = skewedValue(rng);
        u64 expect[64];
        std::memcpy(expect, base, sizeof(base));
        scalar::maxBroadcastU64(expect, mask, t64);
        for (const Ops *t : tablesUnderTest()) {
            u64 got[64];
            std::memcpy(got, base, sizeof(base));
            t->maxBroadcastU64(got, mask, t64);
            EXPECT_EQ(std::memcmp(got, expect, sizeof(expect)), 0)
                << levelName(t->level) << " rep=" << rep;
        }
    }
}

TEST(SimdKernels, WakeDecU8MatchesScalar)
{
    u64 rng = 0x5555555555555551ull;
    u8 base[64];
    for (int rep = 0; rep < 400; ++rep) {
        const u64 mask = skewedMask(rng);
        for (size_t i = 0; i < 64; ++i) {
            // Masked lanes carry small nonzero counts (the engine's
            // contract); some are 1 so the newly-zero path is hot.
            const u64 r = nextRand(rng);
            base[i] = static_cast<u8>(1 + (r & 3));
        }
        u8 expect[64];
        std::memcpy(expect, base, sizeof(base));
        const u64 expectZero = scalar::wakeDecU8(expect, mask);
        for (const Ops *t : tablesUnderTest()) {
            u8 got[64];
            std::memcpy(got, base, sizeof(base));
            EXPECT_EQ(t->wakeDecU8(got, mask), expectZero)
                << levelName(t->level) << " rep=" << rep;
            EXPECT_EQ(std::memcmp(got, expect, sizeof(expect)), 0)
                << levelName(t->level) << " rep=" << rep;
        }
    }
}

TEST(SimdKernels, EqByteBitmapMatchesScalar)
{
    u64 rng = 0x6666666666666661ull;
    for (size_t n = 1; n <= 257; ++n) {
        std::vector<u8> bytes(n);
        const size_t nw = (n + 63) / 64;
        std::vector<u64> expect(nw), got(nw);
        for (int rep = 0; rep < 4; ++rep) {
            // Few distinct byte values so matches are dense.
            const u8 needle = static_cast<u8>(nextRand(rng) & 3);
            for (size_t i = 0; i < n; ++i)
                bytes[i] = static_cast<u8>(nextRand(rng) & 3);
            scalar::eqByteBitmap(bytes.data(), n, needle, expect.data());
            for (const Ops *t : tablesUnderTest()) {
                std::fill(got.begin(), got.end(), ~u64{0});
                t->eqByteBitmap(bytes.data(), n, needle, got.data());
                EXPECT_EQ(got, expect)
                    << levelName(t->level) << " n=" << n;
            }
        }
    }
}

TEST(SimdKernels, TestBitBitmapMatchesScalar)
{
    u64 rng = 0x7777777777777771ull;
    for (size_t n = 1; n <= 257; ++n) {
        std::vector<u8> bytes(n);
        const size_t nw = (n + 63) / 64;
        std::vector<u64> expect(nw), got(nw);
        for (int rep = 0; rep < 4; ++rep) {
            const u8 bit =
                static_cast<u8>(u64{1} << (nextRand(rng) & 7));
            for (size_t i = 0; i < n; ++i)
                bytes[i] = static_cast<u8>(nextRand(rng));
            scalar::testBitBitmap(bytes.data(), n, bit, expect.data());
            for (const Ops *t : tablesUnderTest()) {
                std::fill(got.begin(), got.end(), ~u64{0});
                t->testBitBitmap(bytes.data(), n, bit, got.data());
                EXPECT_EQ(got, expect)
                    << levelName(t->level) << " n=" << n;
            }
        }
    }
}

TEST(SimdKernels, PopcountWordsMatchesScalar)
{
    u64 rng = 0x8888888888888881ull;
    for (size_t n = 0; n <= 257; ++n) {
        std::vector<u64> words(n + 1);
        for (size_t i = 0; i < n; ++i)
            words[i] = skewedMask(rng);
        const u64 expect = scalar::popcountWords(words.data(), n);
        for (const Ops *t : tablesUnderTest())
            EXPECT_EQ(t->popcountWords(words.data(), n), expect)
                << levelName(t->level) << " n=" << n;
    }
}

/** Forced-scalar dispatch must actually hand out the scalar table —
 *  the CI MSIM_SIMD=0 leg depends on this being the real thing. */
TEST(SimdDispatch, ForcedScalarServesScalarEntries)
{
    ScopedLevel guard(Level::Scalar);
    const Ops &t = ops();
    EXPECT_EQ(t.level, Level::Scalar);
    u64 values[64];
    for (size_t i = 0; i < 64; ++i)
        values[i] = i;
    EXPECT_EQ(t.leBitmap64(values, 31),
              scalar::leBitmap64(values, 31));
}

} // namespace
} // namespace msim::simd
