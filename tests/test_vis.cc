/** @file Property and unit tests for the VIS functional semantics. */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/saturate.hh"
#include "vis/gsr.hh"
#include "vis/ops.hh"

namespace msim::vis
{
namespace
{

u64
randomPacked(Rng &rng)
{
    return rng.next();
}

TEST(VisOps, Fpadd16MatchesScalar)
{
    Rng rng(1);
    for (int t = 0; t < 200; ++t) {
        const u64 a = randomPacked(rng), b = randomPacked(rng);
        const u64 r = fpadd16(a, b);
        for (unsigned l = 0; l < 4; ++l)
            EXPECT_EQ(halfLane(r, l),
                      static_cast<u16>(halfLane(a, l) + halfLane(b, l)));
    }
}

TEST(VisOps, Fpsub16MatchesScalar)
{
    Rng rng(2);
    for (int t = 0; t < 200; ++t) {
        const u64 a = randomPacked(rng), b = randomPacked(rng);
        const u64 r = fpsub16(a, b);
        for (unsigned l = 0; l < 4; ++l)
            EXPECT_EQ(halfLane(r, l),
                      static_cast<u16>(halfLane(a, l) - halfLane(b, l)));
    }
}

TEST(VisOps, Fpadd32Wraps)
{
    const u64 a = setWordLane(setWordLane(0, 0, 0xffffffff), 1, 1);
    const u64 b = setWordLane(setWordLane(0, 0, 1), 1, 2);
    const u64 r = fpadd32(a, b);
    EXPECT_EQ(wordLane(r, 0), 0u);
    EXPECT_EQ(wordLane(r, 1), 3u);
}

TEST(VisOps, Fmul8x16Rounding)
{
    // (pixel * coeff + 128) >> 8, signed coefficient.
    u64 a = 0;
    a = setByteLane(a, 0, 200);
    a = setByteLane(a, 1, 10);
    u64 b = 0;
    b = setHalfLane(b, 0, 256); // 1.0 in 8.8
    b = setHalfLane(b, 1, static_cast<u16>(s16{-256}));
    const u64 r = fmul8x16(a, b);
    EXPECT_EQ(static_cast<s16>(halfLane(r, 0)), 200);
    EXPECT_EQ(static_cast<s16>(halfLane(r, 1)), -10);
}

TEST(VisOps, Fmul8x16AuAlBroadcast)
{
    Rng rng(3);
    for (int t = 0; t < 100; ++t) {
        const u64 a = randomPacked(rng);
        const u16 hi = static_cast<u16>(rng.next());
        const u16 lo = static_cast<u16>(rng.next());
        const u32 b = (u32{hi} << 16) | lo;
        const u64 rau = fmul8x16au(a, b);
        const u64 ral = fmul8x16al(a, b);
        for (unsigned l = 0; l < 4; ++l) {
            const s32 px = byteLane(a, l);
            EXPECT_EQ(static_cast<s16>(halfLane(rau, l)),
                      static_cast<s16>((px * static_cast<s16>(hi) + 128)
                                       >> 8));
            EXPECT_EQ(static_cast<s16>(halfLane(ral, l)),
                      static_cast<s16>((px * static_cast<s16>(lo) + 128)
                                       >> 8));
        }
    }
}

/** The 3-op 16x16 emulation: su + ul == (a*b) >> 8 (mod 2^16). */
TEST(VisOps, Mul16EmulationIdentity)
{
    Rng rng(4);
    for (int t = 0; t < 500; ++t) {
        const u64 a = randomPacked(rng), b = randomPacked(rng);
        const u64 sum = fpadd16(fmul8sux16(a, b), fmul8ulx16(a, b));
        for (unsigned l = 0; l < 4; ++l) {
            const s32 x = static_cast<s16>(halfLane(a, l));
            const s32 y = static_cast<s16>(halfLane(b, l));
            EXPECT_EQ(halfLane(sum, l),
                      static_cast<u16>((x * y) >> 8))
                << "lane " << l << " x " << x << " y " << y;
        }
    }
}

/** The muld pair: su + ul is the exact 32-bit product of lanes 0..1. */
TEST(VisOps, Muld16ExactProduct)
{
    Rng rng(5);
    for (int t = 0; t < 500; ++t) {
        const u64 a = randomPacked(rng), b = randomPacked(rng);
        const u64 sum = fpadd32(fmuld8sux16(a, b), fmuld8ulx16(a, b));
        for (unsigned l = 0; l < 2; ++l) {
            const s32 x = static_cast<s16>(halfLane(a, l));
            const s32 y = static_cast<s16>(halfLane(b, l));
            EXPECT_EQ(static_cast<s32>(wordLane(sum, l)), x * y);
        }
    }
}

TEST(VisOps, ExpandPackInverse)
{
    // fexpand followed by fpack16 at scale 3 is the identity on bytes.
    const Gsr gsr = makeGsr(3, 0);
    Rng rng(6);
    for (int t = 0; t < 200; ++t) {
        const u64 a = rng.next() & 0xffffffff;
        const u64 packed = fpack16(fexpand(a), gsr);
        for (unsigned l = 0; l < 4; ++l)
            EXPECT_EQ(byteLane(packed, l), byteLane(a, l));
    }
}

TEST(VisOps, Pack16Saturates)
{
    const Gsr gsr = makeGsr(7, 0); // identity extraction
    u64 v = 0;
    v = setHalfLane(v, 0, static_cast<u16>(s16{-100}));
    v = setHalfLane(v, 1, 300);
    v = setHalfLane(v, 2, 255);
    v = setHalfLane(v, 3, 0);
    const u64 p = fpack16(v, gsr);
    EXPECT_EQ(byteLane(p, 0), 0);
    EXPECT_EQ(byteLane(p, 1), 255);
    EXPECT_EQ(byteLane(p, 2), 255);
    EXPECT_EQ(byteLane(p, 3), 0);
}

TEST(VisOps, PackFixSaturatesTo16)
{
    const Gsr gsr = makeGsr(0, 0);
    u64 v = setWordLane(0, 0, 0x40000000); // large positive
    v = setWordLane(v, 1, static_cast<u32>(-0x40000000));
    const u64 p = fpackfix(v, gsr);
    EXPECT_EQ(static_cast<s16>(halfLane(p, 0)), 16384);
    EXPECT_EQ(static_cast<s16>(halfLane(p, 1)), -16384);
}

TEST(VisOps, MergeInterleaves)
{
    u64 a = 0, b = 0;
    for (unsigned i = 0; i < 4; ++i) {
        a = setByteLane(a, i, static_cast<u8>(i));
        b = setByteLane(b, i, static_cast<u8>(0x10 + i));
    }
    const u64 m = fpmerge(a, b);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(byteLane(m, 2 * i), i);
        EXPECT_EQ(byteLane(m, 2 * i + 1), 0x10 + i);
    }
}

TEST(VisOps, AligndataExtractsWindow)
{
    u64 a = 0, b = 0;
    for (unsigned i = 0; i < 8; ++i) {
        a = setByteLane(a, i, static_cast<u8>(i));
        b = setByteLane(b, i, static_cast<u8>(8 + i));
    }
    for (unsigned off = 0; off < 8; ++off) {
        const Gsr gsr = makeGsr(0, off);
        const u64 r = faligndata(a, b, gsr);
        for (unsigned i = 0; i < 8; ++i)
            EXPECT_EQ(byteLane(r, i), off + i);
    }
}

TEST(VisOps, AlignaddrSetsGsr)
{
    Gsr gsr;
    EXPECT_EQ(alignaddr(0x1003, gsr), 0x1000u);
    EXPECT_EQ(gsr.align, 3u);
    EXPECT_EQ(alignaddr(0x1008, gsr), 0x1008u);
    EXPECT_EQ(gsr.align, 0u);
}

/** Composition property: two aligned loads + faligndata == unaligned load. */
TEST(VisOps, AligndataComposesWithMemory)
{
    u8 mem[24];
    for (unsigned i = 0; i < 24; ++i)
        mem[i] = static_cast<u8>(100 + i);
    for (unsigned off = 0; off < 8; ++off) {
        Gsr gsr;
        alignaddr(off, gsr);
        u64 lo = 0, hi = 0;
        for (unsigned i = 0; i < 8; ++i) {
            lo = setByteLane(lo, i, mem[i]);
            hi = setByteLane(hi, i, mem[8 + i]);
        }
        const u64 r = faligndata(lo, hi, gsr);
        for (unsigned i = 0; i < 8; ++i)
            EXPECT_EQ(byteLane(r, i), mem[off + i]);
    }
}

TEST(VisOps, CompareMasks)
{
    u64 a = 0, b = 0;
    a = setHalfLane(a, 0, 5);
    b = setHalfLane(b, 0, 3);
    a = setHalfLane(a, 1, static_cast<u16>(s16{-5}));
    b = setHalfLane(b, 1, 3);
    a = setHalfLane(a, 2, 7);
    b = setHalfLane(b, 2, 7);
    EXPECT_EQ(fcmpgt16(a, b) & 7u, 1u);
    EXPECT_EQ(fcmple16(a, b) & 7u, 6u);
    EXPECT_EQ(fcmpeq16(a, b) & 7u, 4u);
}

TEST(VisOps, Compare32)
{
    u64 a = setWordLane(setWordLane(0, 0, 100), 1,
                        static_cast<u32>(-50));
    u64 b = setWordLane(setWordLane(0, 0, 50), 1, 10);
    EXPECT_EQ(fcmpgt32(a, b), 1u);
    EXPECT_EQ(fcmple32(a, b), 2u);
}

TEST(VisOps, EdgeMasksLeftBoundary)
{
    // Aligned start, far end: all lanes valid.
    EXPECT_EQ(edge8(0x1000, 0x10ff), 0xff);
    // Start at offset 3: lanes 3..7.
    EXPECT_EQ(edge8(0x1003, 0x10ff), 0xf8);
}

TEST(VisOps, EdgeMasksSameBlock)
{
    // Start offset 2, end offset 5 in the same 8-byte block.
    EXPECT_EQ(edge8(0x1002, 0x1005), 0x3c);
    EXPECT_EQ(edge16(0x1002, 0x1005), 0x06);
    EXPECT_EQ(edge32(0x1000, 0x1003), 0x01);
}

TEST(VisOps, PdistMatchesScalarSad)
{
    Rng rng(8);
    for (int t = 0; t < 300; ++t) {
        const u64 a = rng.next(), b = rng.next();
        const u64 acc = rng.nextBelow(1000);
        u64 want = acc;
        for (unsigned i = 0; i < 8; ++i)
            want += static_cast<u64>(
                std::abs(int(byteLane(a, i)) - int(byteLane(b, i))));
        EXPECT_EQ(pdist(a, b, acc), want);
    }
}

TEST(VisOps, Logicals)
{
    const u64 a = 0xff00ff00ff00ff00ull, b = 0x0ff00ff00ff00ff0ull;
    EXPECT_EQ(fand(a, b), a & b);
    EXPECT_EQ(forOp(a, b), a | b);
    EXPECT_EQ(fxor(a, b), a ^ b);
    EXPECT_EQ(fnot(a), ~a);
    EXPECT_EQ(fandnot(a, b), ~a & b);
}

TEST(VisOps, MaskToLanes)
{
    const u64 m = maskToLanes16(0b0101);
    EXPECT_EQ(halfLane(m, 0), 0xffff);
    EXPECT_EQ(halfLane(m, 1), 0);
    EXPECT_EQ(halfLane(m, 2), 0xffff);
    EXPECT_EQ(halfLane(m, 3), 0);
}

/** Parameterized sweep: fpack16 equals the scalar saturation formula. */
class PackScaleTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PackScaleTest, MatchesScalarFormula)
{
    const unsigned scale = GetParam();
    const Gsr gsr = makeGsr(scale, 0);
    Rng rng(100 + scale);
    for (int t = 0; t < 100; ++t) {
        const u64 a = rng.next();
        const u64 p = fpack16(a, gsr);
        for (unsigned l = 0; l < 4; ++l) {
            const s32 v = static_cast<s16>(halfLane(a, l));
            const s32 shifted = (v << scale) >> 7;
            EXPECT_EQ(byteLane(p, l), satU8(shifted));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllScales, PackScaleTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u,
                                           7u));

TEST(VisOps, Mul16MatchesEmulation)
{
    Rng rng(9);
    for (int t = 0; t < 300; ++t) {
        const u64 a = rng.next(), b = rng.next();
        EXPECT_EQ(mul16(a, b),
                  fpadd16(fmul8sux16(a, b), fmul8ulx16(a, b)));
    }
}

TEST(VisOps, PmaddwdPairSums)
{
    Rng rng(10);
    for (int t = 0; t < 300; ++t) {
        const u64 a = rng.next(), b = rng.next();
        const u64 r = pmaddwd(a, b);
        for (unsigned p = 0; p < 2; ++p) {
            const s32 want =
                s32(s16(halfLane(a, 2 * p))) * s16(halfLane(b, 2 * p)) +
                s32(s16(halfLane(a, 2 * p + 1))) *
                    s16(halfLane(b, 2 * p + 1));
            EXPECT_EQ(static_cast<s32>(wordLane(r, p)), want);
        }
    }
}

} // namespace
} // namespace msim::vis
