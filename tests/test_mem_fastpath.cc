/**
 * @file
 * Memory fast-path regression: the optimized models (Cache with O(1)
 * MSHR/port tracking + flat tags, ReplayEngine with the dense memory
 * lane) must be bit-identical to the preserved pre-optimization models
 * (RefCache + RefReplayEngine) — same cycles, same stall breakdown
 * doubles, every cache counter — across all benchmarks × variants, all
 * machine shapes, and adversarial access streams with non-monotonic
 * timestamps (the case the dupUntil_ watermark exists for).
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "kernels/addition.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/ref_cache.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim::core
{
namespace
{

using prog::Variant;

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const Benchmark &bench = findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

/** Every RunResult field exactly equal, doubles included: the fast
 *  path must reproduce the same per-cycle charge sequence. */
void
expectIdentical(const sim::RunResult &ref, const sim::RunResult &fast,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(ref.exec.cycles, fast.exec.cycles);
    EXPECT_EQ(ref.exec.retired, fast.exec.retired);
    EXPECT_EQ(ref.exec.busy, fast.exec.busy);
    EXPECT_EQ(ref.exec.fuStall, fast.exec.fuStall);
    EXPECT_EQ(ref.exec.memL1Hit, fast.exec.memL1Hit);
    EXPECT_EQ(ref.exec.memL1Miss, fast.exec.memL1Miss);
    EXPECT_EQ(ref.exec.mixFu, fast.exec.mixFu);
    EXPECT_EQ(ref.exec.mixBranch, fast.exec.mixBranch);
    EXPECT_EQ(ref.exec.mixMemory, fast.exec.mixMemory);
    EXPECT_EQ(ref.exec.mixVis, fast.exec.mixVis);
    EXPECT_EQ(ref.exec.branches, fast.exec.branches);
    EXPECT_EQ(ref.exec.mispredicts, fast.exec.mispredicts);
    EXPECT_EQ(ref.exec.loadsL1, fast.exec.loadsL1);
    EXPECT_EQ(ref.exec.loadsL2, fast.exec.loadsL2);
    EXPECT_EQ(ref.exec.loadsMem, fast.exec.loadsMem);
    EXPECT_EQ(ref.exec.prefetchesIssued, fast.exec.prefetchesIssued);
    EXPECT_EQ(ref.exec.prefetchesDropped, fast.exec.prefetchesDropped);

    EXPECT_EQ(ref.l1.accesses, fast.l1.accesses);
    EXPECT_EQ(ref.l1.hits, fast.l1.hits);
    EXPECT_EQ(ref.l1.misses, fast.l1.misses);
    EXPECT_EQ(ref.l1.writebacks, fast.l1.writebacks);
    EXPECT_EQ(ref.l1.prefetchDrops, fast.l1.prefetchDrops);
    EXPECT_EQ(ref.l1.combined, fast.l1.combined);
    EXPECT_EQ(ref.l1.blocked, fast.l1.blocked);
    EXPECT_EQ(ref.l2.accesses, fast.l2.accesses);
    EXPECT_EQ(ref.l2.hits, fast.l2.hits);
    EXPECT_EQ(ref.l2.misses, fast.l2.misses);
    EXPECT_EQ(ref.l2.writebacks, fast.l2.writebacks);
    EXPECT_EQ(ref.l2.prefetchDrops, fast.l2.prefetchDrops);
    EXPECT_EQ(ref.l2.combined, fast.l2.combined);
    EXPECT_EQ(ref.l2.blocked, fast.l2.blocked);

    EXPECT_EQ(ref.tbInstrs, fast.tbInstrs);
    EXPECT_EQ(ref.visOps, fast.visOps);
    EXPECT_EQ(ref.visOverheadOps, fast.visOverheadOps);
}

/**
 * One benchmark, all variants: the old-equivalent live path (RefCache
 * feeding the reference issue logic) against the new fast replay path
 * (flat-tag Cache + lane-driven ReplayEngine), and the reference
 * replay engine against the fast one on the same trace.
 */
void
checkFastpath(const std::string &name, const sim::MachineConfig &machine)
{
    const sim::MachineConfig reference = sim::asReference(machine);
    for (Variant variant :
         {Variant::Scalar, Variant::Vis, Variant::VisPrefetch}) {
        const auto gen = generatorFor(name, variant);
        const std::string label =
            name + "/" + std::to_string(static_cast<int>(variant));
        const auto refLive = sim::runTrace(gen, reference);
        const auto trace = sim::recordTrace(gen, machine.skewArrays,
                                            machine.visFeatures);
        const auto fastReplay = sim::replayTrace(trace, machine);
        expectIdentical(refLive, fastReplay, label + " live-ref vs fast");
        const auto refReplay = sim::replayTrace(trace, reference);
        expectIdentical(refReplay, fastReplay,
                        label + " replay-ref vs fast");
    }
}

TEST(MemFastpath, ImageKernels)
{
    for (const char *name :
         {"addition", "blend", "conv", "dotprod", "scaling", "thresh"})
        checkFastpath(name, sim::outOfOrder4Way());
}

TEST(MemFastpath, ExtraKernels)
{
    for (const char *name :
         {"copy", "invert", "sepconv", "lookup", "transpose", "erode"})
        checkFastpath(name, sim::outOfOrder4Way());
}

TEST(MemFastpath, JpegCodecs)
{
    for (const char *name : {"cjpeg", "djpeg", "cjpeg-np", "djpeg-np"})
        checkFastpath(name, sim::outOfOrder4Way());
}

TEST(MemFastpath, MpegCodecs)
{
    for (const char *name : {"mpeg-enc", "mpeg-dec"})
        checkFastpath(name, sim::outOfOrder4Way());
}

/** The fast models must also match on every machine shape the sweeps
 *  use: in-order cores (cursor replay), tiny caches, small predictor. */
TEST(MemFastpath, MachineMatrix)
{
    std::vector<sim::MachineConfig> machines = {
        sim::inOrder1Way(), sim::inOrder4Way(), sim::withL1Size(1 << 10),
        sim::withL2Size(32 << 10)};
    sim::MachineConfig tiny_predictor = sim::outOfOrder4Way();
    tiny_predictor.core.predictorEntries = 16;
    machines.push_back(tiny_predictor);

    const sim::Generator gen = [](prog::TraceBuilder &tb) {
        kernels::runAddition(tb, Variant::Vis, 512, 64, 3);
    };
    const sim::MachineConfig base = sim::outOfOrder4Way();
    const auto trace =
        sim::recordTrace(gen, base.skewArrays, base.visFeatures);
    for (size_t i = 0; i < machines.size(); ++i) {
        const auto ref =
            sim::replayTrace(trace, sim::asReference(machines[i]));
        const auto fast = sim::replayTrace(trace, machines[i]);
        expectIdentical(ref, fast, "machine #" + std::to_string(i));
    }
}

/** Deterministic xorshift-free LCG; only the top bits are used. */
struct Lcg
{
    u64 state;

    explicit Lcg(u64 seed) : state(seed) {}

    u64
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    }
};

/**
 * Drive a Cache and a RefCache (each with its own DRAM) through the
 * same access stream and demand identical per-access results and final
 * counters. The stream concentrates on a handful of sets (conflicts,
 * combines, MSHR churn) and issues queries at non-monotonic times —
 * the regime where a naive line->MSHR map diverges from the reference
 * linear scan and the dupUntil_ watermark must kick in.
 */
void
fuzzAgainstReference(const mem::CacheConfig &cfg, u64 seed, int accesses)
{
    using namespace msim::mem;
    Dram dramFast{DramConfig{}};
    Dram dramRef{DramConfig{}};
    Cache fast(cfg, dramFast, HitLevel::L1);
    RefCache ref(cfg, dramRef, HitLevel::L1);

    Lcg rng(seed);
    Cycle base = 0;
    for (int i = 0; i < accesses; ++i) {
        base += rng.next() % 6;
        // Jittered query time: successive queries regress by up to 31
        // cycles relative to each other (and far more relative to
        // in-flight fills), exercising the scan-fallback window.
        const Cycle t = base + rng.next() % 32;
        const Addr addr = (rng.next() % 24) * 64;
        const u64 k = rng.next() % 20;
        const AccessKind kind = k < 10  ? AccessKind::Load
                                : k < 16 ? AccessKind::Store
                                : k < 19 ? AccessKind::Prefetch
                                         : AccessKind::Writeback;

        const AccessResult a = fast.access(addr, kind, t);
        const AccessResult b = ref.access(addr, kind, t);
        SCOPED_TRACE("access #" + std::to_string(i));
        ASSERT_EQ(a.ready, b.ready);
        ASSERT_EQ(a.level, b.level);
        ASSERT_EQ(a.contended, b.contended);
        ASSERT_EQ(a.dropped, b.dropped);
    }

    EXPECT_EQ(fast.accesses(), ref.accesses());
    EXPECT_EQ(fast.hits(), ref.hits());
    EXPECT_EQ(fast.misses(), ref.misses());
    EXPECT_EQ(fast.loadMisses(), ref.loadMisses());
    EXPECT_EQ(fast.writebacks(), ref.writebacks());
    EXPECT_EQ(fast.prefetchDrops(), ref.prefetchDrops());
    EXPECT_EQ(fast.combinedRequests(), ref.combinedRequests());
    EXPECT_EQ(fast.blockedRequests(), ref.blockedRequests());
    EXPECT_EQ(fast.mshrOccupancy().peakOccupancy(),
              ref.mshrOccupancy().peakOccupancy());
    EXPECT_EQ(fast.loadOverlap().samples(), ref.loadOverlap().samples());
    EXPECT_EQ(dramFast.reads(), dramRef.reads());
    EXPECT_EQ(dramFast.writes(), dramRef.writes());
}

TEST(MemFastpath, FuzzDefaultGeometry)
{
    fuzzAgainstReference(mem::CacheConfig{1024, 2, 64, 2, 2, 12, 8},
                         0x1234u, 6000);
}

TEST(MemFastpath, FuzzDirectMappedSinglePort)
{
    fuzzAgainstReference(mem::CacheConfig{1024, 1, 64, 1, 1, 2, 1},
                         0xbeefu, 6000);
}

TEST(MemFastpath, FuzzSingleMshr)
{
    fuzzAgainstReference(mem::CacheConfig{1024, 2, 64, 1, 2, 1, 8},
                         0xc0ffeeu, 6000);
}

TEST(MemFastpath, FuzzMshrSweep)
{
    for (u32 mshrs : {2u, 4u, 6u, 12u})
        fuzzAgainstReference(mem::CacheConfig{2048, 4, 64, 2, 2, mshrs, 2},
                             0x9999u + mshrs, 4000);
}

} // namespace
} // namespace msim::core
