/**
 * @file
 * Trace capture & replay: recorder reconstruction exactness, replay
 * fidelity (bit-identical results vs the live path) across every
 * registered benchmark, variant, and machine shape, and the batch
 * driver's grouping/exception behavior.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "kernels/addition.hh"
#include "prog/recorded_trace.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim::core
{
namespace
{

using prog::Variant;

/** Sink that captures the raw stream for field-by-field comparison. */
struct CollectingSink : isa::InstSink
{
    std::vector<isa::Inst> insts;
    bool finished = false;

    void feed(const isa::Inst &inst) override { insts.push_back(inst); }
    void finish() override { finished = true; }
};

sim::Generator
generatorFor(const std::string &name, Variant variant)
{
    const Benchmark &bench = findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

/** Assert every RunResult field matches exactly (doubles included:
 *  replay must reproduce the same per-cycle charge sequence). */
void
expectIdentical(const sim::RunResult &live, const sim::RunResult &replay,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(live.exec.cycles, replay.exec.cycles);
    EXPECT_EQ(live.exec.retired, replay.exec.retired);
    EXPECT_EQ(live.exec.busy, replay.exec.busy);
    EXPECT_EQ(live.exec.fuStall, replay.exec.fuStall);
    EXPECT_EQ(live.exec.memL1Hit, replay.exec.memL1Hit);
    EXPECT_EQ(live.exec.memL1Miss, replay.exec.memL1Miss);
    EXPECT_EQ(live.exec.mixFu, replay.exec.mixFu);
    EXPECT_EQ(live.exec.mixBranch, replay.exec.mixBranch);
    EXPECT_EQ(live.exec.mixMemory, replay.exec.mixMemory);
    EXPECT_EQ(live.exec.mixVis, replay.exec.mixVis);
    EXPECT_EQ(live.exec.branches, replay.exec.branches);
    EXPECT_EQ(live.exec.mispredicts, replay.exec.mispredicts);
    EXPECT_EQ(live.exec.loadsL1, replay.exec.loadsL1);
    EXPECT_EQ(live.exec.loadsL2, replay.exec.loadsL2);
    EXPECT_EQ(live.exec.loadsMem, replay.exec.loadsMem);
    EXPECT_EQ(live.exec.prefetchesIssued, replay.exec.prefetchesIssued);
    EXPECT_EQ(live.exec.prefetchesDropped, replay.exec.prefetchesDropped);

    EXPECT_EQ(live.l1.accesses, replay.l1.accesses);
    EXPECT_EQ(live.l1.hits, replay.l1.hits);
    EXPECT_EQ(live.l1.misses, replay.l1.misses);
    EXPECT_EQ(live.l1.writebacks, replay.l1.writebacks);
    EXPECT_EQ(live.l1.prefetchDrops, replay.l1.prefetchDrops);
    EXPECT_EQ(live.l1.combined, replay.l1.combined);
    EXPECT_EQ(live.l1.blocked, replay.l1.blocked);
    EXPECT_EQ(live.l2.accesses, replay.l2.accesses);
    EXPECT_EQ(live.l2.hits, replay.l2.hits);
    EXPECT_EQ(live.l2.misses, replay.l2.misses);
    EXPECT_EQ(live.l2.writebacks, replay.l2.writebacks);

    EXPECT_EQ(live.tbInstrs, replay.tbInstrs);
    EXPECT_EQ(live.visOps, replay.visOps);
    EXPECT_EQ(live.visOverheadOps, replay.visOverheadOps);
}

void
checkFidelity(const std::string &name, const sim::MachineConfig &machine)
{
    for (Variant variant :
         {Variant::Scalar, Variant::Vis, Variant::VisPrefetch}) {
        const auto gen = generatorFor(name, variant);
        const auto live = sim::runTrace(gen, machine);
        const auto trace = sim::recordTrace(gen, machine.skewArrays,
                                            machine.visFeatures);
        const auto replay = sim::replayTrace(trace, machine);
        expectIdentical(live, replay,
                        name + "/" + std::to_string(static_cast<int>(
                                         variant)));
    }
}

TEST(Recorder, ReconstructsTheExactStream)
{
    const auto gen = generatorFor("conv", Variant::Vis);
    const sim::MachineConfig m = sim::outOfOrder4Way();

    CollectingSink direct;
    {
        prog::TraceBuilder tb(direct, m.skewArrays, true, m.visFeatures);
        gen(tb);
        tb.finish();
    }
    const auto trace = sim::recordTrace(gen, m.skewArrays, m.visFeatures);
    CollectingSink rebuilt;
    trace.replayInto(rebuilt);

    EXPECT_TRUE(direct.finished);
    EXPECT_TRUE(rebuilt.finished);
    ASSERT_EQ(direct.insts.size(), rebuilt.insts.size());
    EXPECT_EQ(trace.instCount(), direct.insts.size());
    for (size_t i = 0; i < direct.insts.size(); ++i) {
        const isa::Inst &a = direct.insts[i];
        const isa::Inst &b = rebuilt.insts[i];
        SCOPED_TRACE(i);
        ASSERT_EQ(a.op, b.op);
        EXPECT_EQ(a.memSize, b.memSize);
        EXPECT_EQ(a.flags, b.flags);
        ASSERT_EQ(a.numSrcs, b.numSrcs);
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.dst, b.dst);
        for (unsigned s = 0; s < a.numSrcs; ++s)
            EXPECT_EQ(a.src[s], b.src[s]);
        EXPECT_EQ(a.addr, b.addr);
    }
}

TEST(ReplayFidelity, ImageKernels)
{
    for (const char *name :
         {"addition", "blend", "conv", "dotprod", "scaling", "thresh"})
        checkFidelity(name, sim::outOfOrder4Way());
}

TEST(ReplayFidelity, ExtraKernels)
{
    for (const char *name :
         {"copy", "invert", "sepconv", "lookup", "transpose", "erode"})
        checkFidelity(name, sim::outOfOrder4Way());
}

TEST(ReplayFidelity, JpegCodecs)
{
    for (const char *name : {"cjpeg", "djpeg", "cjpeg-np", "djpeg-np"})
        checkFidelity(name, sim::outOfOrder4Way());
}

TEST(ReplayFidelity, MpegCodecs)
{
    for (const char *name : {"mpeg-enc", "mpeg-dec"})
        checkFidelity(name, sim::outOfOrder4Way());
}

/** One capture must replay faithfully on every machine shape the
 *  sweeps use: both in-order cores, cache sizes, predictor sizes. */
TEST(ReplayFidelity, MachineMatrix)
{
    const sim::Generator gen = [](prog::TraceBuilder &tb) {
        kernels::runAddition(tb, Variant::Vis, 512, 64, 3);
    };
    std::vector<sim::MachineConfig> machines = {
        sim::inOrder1Way(),  sim::inOrder4Way(),
        sim::outOfOrder4Way(), sim::withL1Size(1 << 10),
        sim::withL2Size(32 << 10)};
    sim::MachineConfig tiny_predictor = sim::outOfOrder4Way();
    tiny_predictor.core.predictorEntries = 16;
    machines.push_back(tiny_predictor);

    const sim::MachineConfig base = sim::outOfOrder4Way();
    const auto trace =
        sim::recordTrace(gen, base.skewArrays, base.visFeatures);
    for (size_t i = 0; i < machines.size(); ++i) {
        const auto live = sim::runTrace(gen, machines[i]);
        const auto replay = sim::replayTrace(trace, machines[i]);
        expectIdentical(live, replay, "machine #" + std::to_string(i));
    }
}

TEST(RunJobs, RecordedMatchesLive)
{
    std::vector<Job> jobs;
    for (u32 size : {1u << 10, 16u << 10})
        for (Variant v : {Variant::Scalar, Variant::Vis})
            jobs.push_back({"blend", v, sim::withL1Size(size)});

    const auto recorded = runJobs(jobs, 0, JobMode::Recorded);
    const auto live = runJobs(jobs, 0, JobMode::Live);
    ASSERT_EQ(recorded.size(), jobs.size());
    ASSERT_EQ(live.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i)
        expectIdentical(live[i], recorded[i], "job #" + std::to_string(i));
}

TEST(RunJobs, WorkerExceptionPropagatesToCaller)
{
    // Regression: a bad job name used to fatal()/terminate from inside
    // a worker thread; it must surface as an exception on the caller.
    std::vector<Job> jobs = {
        {"addition", Variant::Scalar, sim::outOfOrder4Way()},
        {"no-such-benchmark", Variant::Scalar, sim::outOfOrder4Way()}};
    EXPECT_THROW(runJobs(jobs, 0, JobMode::Recorded),
                 std::invalid_argument);
    EXPECT_THROW(runJobs(jobs, 0, JobMode::Live), std::invalid_argument);
    EXPECT_THROW(runJobs(jobs, 1, JobMode::Recorded),
                 std::invalid_argument);
}

TEST(FindBenchmark, ThrowsOnUnknownName)
{
    EXPECT_THROW(findBenchmark("definitely-not-registered"),
                 std::invalid_argument);
}

/** The value tables must grow geometrically (not by a flat +8192) and
 *  accept pre-sizing from a trace's ValId count; exercised with a
 *  trace whose ValId space is far beyond the initial table size. */
TEST(ValueTable, HandlesLargeValIdSpace)
{
    const sim::Generator gen = [](prog::TraceBuilder &tb) {
        kernels::runAddition(tb, Variant::Scalar, 256, 128, 2);
    };
    const sim::MachineConfig m = sim::outOfOrder4Way();
    const auto trace = sim::recordTrace(gen, m.skewArrays, m.visFeatures);
    ASSERT_GT(trace.maxValId(), 100000u);
    const auto live = sim::runTrace(gen, m);
    const auto replay = sim::replayTrace(trace, m);
    expectIdentical(live, replay, "large-valid-space");
}

} // namespace
} // namespace msim::core
