/** @file Unit tests for the instruction model and Table-2 timing. */

#include <gtest/gtest.h>

#include "isa/inst.hh"
#include "isa/timing.hh"

namespace msim::isa
{
namespace
{

TEST(Inst, MixClassification)
{
    EXPECT_EQ(mixClassOf(Op::IntAlu), MixClass::Fu);
    EXPECT_EQ(mixClassOf(Op::FpDiv), MixClass::Fu);
    EXPECT_EQ(mixClassOf(Op::Branch), MixClass::Branch);
    EXPECT_EQ(mixClassOf(Op::Load), MixClass::Memory);
    EXPECT_EQ(mixClassOf(Op::Store), MixClass::Memory);
    EXPECT_EQ(mixClassOf(Op::Prefetch), MixClass::Memory);
    EXPECT_EQ(mixClassOf(Op::VisPdist), MixClass::Vis);
    EXPECT_EQ(mixClassOf(Op::VisPack), MixClass::Vis);
}

TEST(Inst, FuClassification)
{
    EXPECT_EQ(fuClassOf(Op::IntMul), FuClass::IntUnit);
    EXPECT_EQ(fuClassOf(Op::Branch), FuClass::IntUnit);
    EXPECT_EQ(fuClassOf(Op::FpMov), FuClass::FpUnit);
    EXPECT_EQ(fuClassOf(Op::Load), FuClass::AddrGen);
    EXPECT_EQ(fuClassOf(Op::VisAdd), FuClass::VisAdder);
    EXPECT_EQ(fuClassOf(Op::VisMul), FuClass::VisMul);
    EXPECT_EQ(fuClassOf(Op::VisPdist), FuClass::VisMul);
    EXPECT_EQ(fuClassOf(Op::VisPack), FuClass::VisAdder);
}

TEST(Inst, PredicatesAndFlags)
{
    Inst in;
    in.op = Op::Branch;
    in.flags = kFlagTaken;
    EXPECT_TRUE(in.isBranch());
    EXPECT_TRUE(in.taken());
    EXPECT_FALSE(in.isMem());
    in.op = Op::Load;
    in.flags = 0;
    EXPECT_TRUE(in.isLoad());
    EXPECT_TRUE(in.isMem());
    EXPECT_FALSE(in.isVis());
    in.op = Op::VisAlign;
    EXPECT_TRUE(in.isVis());
}

/** Table 2: default integer 1, multiply 7, divide 12, FP 4, div 12. */
TEST(Timing, Table2Latencies)
{
    EXPECT_EQ(timingOf(Op::IntAlu).latency, 1u);
    EXPECT_EQ(timingOf(Op::IntMul).latency, 7u);
    EXPECT_EQ(timingOf(Op::IntDiv).latency, 12u);
    EXPECT_EQ(timingOf(Op::FpAlu).latency, 4u);
    EXPECT_EQ(timingOf(Op::FpMov).latency, 4u);
    EXPECT_EQ(timingOf(Op::FpDiv).latency, 12u);
    EXPECT_EQ(timingOf(Op::VisAdd).latency, 1u);
    EXPECT_EQ(timingOf(Op::VisMul).latency, 3u);
    EXPECT_EQ(timingOf(Op::VisPdist).latency, 3u);
}

TEST(Timing, OnlyFpDivNotPipelined)
{
    for (unsigned o = 0; o < kNumOps; ++o) {
        const Op op = static_cast<Op>(o);
        EXPECT_EQ(timingOf(op).pipelined, op != Op::FpDiv)
            << "op " << opName(op);
    }
}

TEST(Timing, FuCountsScaleWithWidth)
{
    EXPECT_EQ(defaultFuCount(FuClass::IntUnit, 4), 2u);
    EXPECT_EQ(defaultFuCount(FuClass::FpUnit, 4), 2u);
    EXPECT_EQ(defaultFuCount(FuClass::AddrGen, 4), 2u);
    EXPECT_EQ(defaultFuCount(FuClass::VisAdder, 4), 1u);
    EXPECT_EQ(defaultFuCount(FuClass::VisMul, 4), 1u);
    for (unsigned c = 0; c < kNumFuClasses; ++c)
        EXPECT_EQ(defaultFuCount(static_cast<FuClass>(c), 1), 1u);
}

TEST(CountingSink, TalliesByClass)
{
    CountingSink sink;
    Inst a;
    a.op = Op::IntAlu;
    Inst b;
    b.op = Op::Load;
    Inst c;
    c.op = Op::VisMul;
    sink.feed(a);
    sink.feed(a);
    sink.feed(b);
    sink.feed(c);
    EXPECT_EQ(sink.total(), 4u);
    EXPECT_EQ(sink.byMix(MixClass::Fu), 2u);
    EXPECT_EQ(sink.byMix(MixClass::Memory), 1u);
    EXPECT_EQ(sink.byMix(MixClass::Vis), 1u);
    EXPECT_EQ(sink.byOp(Op::IntAlu), 2u);
}

TEST(Inst, ToStringSmoke)
{
    Inst in;
    in.op = Op::Load;
    in.addr = 0x1234;
    in.memSize = 4;
    in.dst = 7;
    const std::string s = toString(in);
    EXPECT_NE(s.find("ld"), std::string::npos);
    EXPECT_NE(s.find("1234"), std::string::npos);
}

} // namespace
} // namespace msim::isa
