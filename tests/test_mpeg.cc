/** @file Tests for the MPEG2-style codec and its traced benchmarks. */

#include <cmath>

#include <gtest/gtest.h>

#include "isa/inst.hh"
#include "mpeg/codec.hh"
#include "mpeg/motion.hh"
#include "mpeg/traced.hh"
#include "prog/trace_builder.hh"

namespace msim::mpeg
{
namespace
{

SeqConfig
smallCfg()
{
    SeqConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.searchRange = 2;
    return cfg;
}

TEST(Motion, SadZeroForIdenticalBlocks)
{
    Plane p(32, 32);
    for (unsigned y = 0; y < 32; ++y)
        for (unsigned x = 0; x < 32; ++x)
            p.at(x, y) = static_cast<u8>(x * 7 + y * 3);
    EXPECT_EQ(sadBlock(p, 4, 4, p, 4, 4, 16, 16), 0u);
    EXPECT_GT(sadBlock(p, 4, 4, p, 5, 4, 16, 16), 0u);
}

TEST(Motion, FullSearchFindsPlantedShift)
{
    // ref = cur shifted by (+2, +1): search must find mv (2, 1).
    Plane cur(64, 64), ref(64, 64);
    for (unsigned y = 0; y < 64; ++y)
        for (unsigned x = 0; x < 64; ++x)
            cur.at(x, y) = static_cast<u8>((x * 13 + y * 7 + x * y) & 0xff);
    for (unsigned y = 0; y < 64; ++y)
        for (unsigned x = 0; x < 64; ++x) {
            const unsigned sx = std::min(x + 2, 63u);
            const unsigned sy = std::min(y + 1, 63u);
            ref.at(x, y) = cur.at(sx, sy);
        }
    // Block at (16,16) in cur matches ref at (14,15) => mv (-2,-1).
    const MotionMatch m = fullSearch(cur, 16, 16, ref, 3);
    EXPECT_EQ(m.mv.dx, -2);
    EXPECT_EQ(m.mv.dy, -1);
    EXPECT_EQ(m.sad, 0u);
}

TEST(Motion, SearchClampsAtFrameEdges)
{
    Plane cur(32, 32), ref(32, 32);
    const MotionMatch m = fullSearch(cur, 0, 0, ref, 4);
    // Candidates with negative coordinates were skipped.
    EXPECT_GE(m.mv.dx, 0);
    EXPECT_GE(m.mv.dy, 0);
}

TEST(Motion, AveragePredictionRounds)
{
    const u8 a[4] = {0, 10, 255, 3};
    const u8 b[4] = {1, 20, 255, 4};
    u8 out[4];
    averagePrediction(a, b, 4, out);
    EXPECT_EQ(out[0], 1);   // (0+1+1)>>1
    EXPECT_EQ(out[1], 15);
    EXPECT_EQ(out[2], 255);
    EXPECT_EQ(out[3], 4);
}

TEST(Motion, ChromaVectorsHalved)
{
    Plane ref(32, 32);
    for (unsigned y = 0; y < 32; ++y)
        for (unsigned x = 0; x < 32; ++x)
            ref.at(x, y) = static_cast<u8>(x + 100 * y);
    u8 out[64];
    fetchPrediction(ref, 8, 8, MotionVector{3, 2}, 8, out);
    EXPECT_EQ(out[0], ref.at(8 + 1, 8 + 1)); // dx/2=1, dy/2=1
}

TEST(Codec, SequenceRoundtrip)
{
    const SeqConfig cfg = smallCfg();
    const auto frames = makeTestSequence(cfg, 5);
    ASSERT_EQ(frames.size(), 4u);
    const EncodedSeq enc = encodeMpeg(frames, cfg);
    EXPECT_EQ(enc.frames.size(), 4u);
    EXPECT_EQ(enc.frames[0].type, 'I');
    EXPECT_EQ(enc.frames[1].type, 'P');
    EXPECT_EQ(enc.frames[2].type, 'B');
    EXPECT_EQ(enc.frames[3].type, 'B');

    const auto out = decodeMpeg(enc);
    ASSERT_EQ(out.size(), 4u);
    for (unsigned f = 0; f < 4; ++f) {
        double mse = 0;
        const auto &a = frames[f].y.samples;
        const auto &b = out[f].y.samples;
        for (size_t i = 0; i < a.size(); ++i) {
            const double d = double(a[i]) - b[i];
            mse += d * d;
        }
        mse /= double(a.size());
        const double psnr = 10 * std::log10(255.0 * 255.0 / mse);
        EXPECT_GT(psnr, 22.0) << "frame " << f;
    }
}

TEST(Codec, DecoderReproducesEncoderRecon)
{
    // The in-loop reconstruction and the decoder must agree exactly
    // (no drift) for the reference frames.
    const SeqConfig cfg = smallCfg();
    const auto frames = makeTestSequence(cfg, 6);
    const EncodedSeq enc = encodeMpeg(frames, cfg);
    const auto out = decodeMpeg(enc);
    EXPECT_EQ(out[0].y.samples, enc.recon[0].y.samples);
    EXPECT_EQ(out[3].y.samples, enc.recon[1].y.samples);
    EXPECT_EQ(out[0].cb.samples, enc.recon[0].cb.samples);
    EXPECT_EQ(out[3].cr.samples, enc.recon[1].cr.samples);
}

TEST(Codec, PFrameUsesMotionVectors)
{
    const SeqConfig cfg = smallCfg();
    const auto frames = makeTestSequence(cfg, 7);
    const EncodedSeq enc = encodeMpeg(frames, cfg);
    unsigned inter = 0, moved = 0;
    for (const MbCode &mb : enc.frames[1].mbs) {
        if (mb.mode == MbMode::Fwd) {
            ++inter;
            if (mb.fwd.dx != 0 || mb.fwd.dy != 0)
                ++moved;
        }
    }
    EXPECT_GT(inter, 0u);
    // The synthetic pan means most matched blocks carry nonzero MVs.
    EXPECT_GT(moved, inter / 2);
}

TEST(Codec, BFramesUseBidirectionalModes)
{
    const SeqConfig cfg = smallCfg();
    const auto frames = makeTestSequence(cfg, 8);
    const EncodedSeq enc = encodeMpeg(frames, cfg);
    unsigned modes[4] = {};
    for (unsigned fi : {2u, 3u})
        for (const MbCode &mb : enc.frames[fi].mbs)
            ++modes[static_cast<unsigned>(mb.mode)];
    // At least two distinct prediction modes in use across B frames.
    unsigned distinct = 0;
    for (unsigned m = 1; m < 4; ++m)
        distinct += modes[m] > 0;
    EXPECT_GE(distinct, 2u);
}

TEST(Codec, FrameBitsRoundtrip)
{
    const SeqConfig cfg = smallCfg();
    const auto frames = makeTestSequence(cfg, 9);
    const EncodedSeq enc = encodeMpeg(frames, cfg);
    for (const FrameCode &fc : enc.frames) {
        FrameCode parsed;
        parsed.type = fc.type;
        parsed.bits = fc.bits;
        readFrameBits(parsed, static_cast<unsigned>(fc.mbs.size()));
        ASSERT_EQ(parsed.mbs.size(), fc.mbs.size());
        for (size_t i = 0; i < fc.mbs.size(); ++i) {
            EXPECT_EQ(parsed.mbs[i].mode, fc.mbs[i].mode);
            EXPECT_EQ(parsed.mbs[i].cbp, fc.mbs[i].cbp);
            EXPECT_EQ(parsed.mbs[i].fwd, fc.mbs[i].fwd);
            for (unsigned b = 0; b < 6; ++b)
                for (unsigned k = 0; k < 64; ++k)
                    ASSERT_EQ(parsed.mbs[i].blocks[b][k],
                              fc.mbs[i].blocks[b][k]);
        }
    }
}

TEST(Codec, CbpSkipsZeroBlocks)
{
    // A static sequence yields many zero residual blocks.
    SeqConfig cfg = smallCfg();
    auto frames = makeTestSequence(cfg, 10);
    frames[1] = frames[0];
    frames[2] = frames[0];
    frames[3] = frames[0];
    const EncodedSeq enc = encodeMpeg(frames, cfg);
    unsigned zeroed = 0, total = 0;
    for (const MbCode &mb : enc.frames[1].mbs) {
        if (mb.mode == MbMode::Intra)
            continue;
        for (unsigned b = 0; b < 6; ++b, ++total)
            zeroed += !(mb.cbp & (1u << b));
    }
    EXPECT_GT(zeroed, total / 2);
}

// --- Traced benchmarks ------------------------------------------------

class TracedMpegTest : public ::testing::TestWithParam<prog::Variant>
{
};

TEST_P(TracedMpegTest, EncoderVerifies)
{
    isa::CountingSink sink;
    prog::TraceBuilder tb(sink);
    runMpegEnc(tb, GetParam(), smallCfg());
    EXPECT_GT(sink.total(), 100000u);
}

TEST_P(TracedMpegTest, DecoderVerifies)
{
    isa::CountingSink sink;
    prog::TraceBuilder tb(sink);
    runMpegDec(tb, GetParam(), smallCfg());
    EXPECT_GT(sink.total(), 10000u);
}

INSTANTIATE_TEST_SUITE_P(Variants, TracedMpegTest,
                         ::testing::Values(prog::Variant::Scalar,
                                           prog::Variant::Vis),
                         [](const auto &info) {
                             return info.param == prog::Variant::Scalar
                                        ? "scalar"
                                        : "vis";
                         });

TEST(TracedMpeg, PdistCollapsesMotionEstimation)
{
    isa::CountingSink s1, s2;
    prog::TraceBuilder t1(s1), t2(s2);
    runMpegEnc(t1, prog::Variant::Scalar, smallCfg());
    runMpegEnc(t2, prog::Variant::Vis, smallCfg());
    // Paper: mpeg-enc VIS drops to ~33% of the base instruction count,
    // dominated by pdist in motion estimation.
    const double ratio = double(s2.total()) / double(s1.total());
    EXPECT_LT(ratio, 0.6);
    EXPECT_GT(s2.byOp(isa::Op::VisPdist), 1000u);
    // Branch count collapses too (|a-b| branches disappear).
    EXPECT_LT(s2.byMix(isa::MixClass::Branch),
              s1.byMix(isa::MixClass::Branch) / 2);
}

} // namespace
} // namespace msim::mpeg
