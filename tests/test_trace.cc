/**
 * @file
 * Coverage for the MSIM_LIVE_JOBS escape hatch: runJobs' live path
 * (re-running the functional benchmark per job) must stay bit-identical
 * to the default recorded path (record once, replay per config), for
 * one benchmark per workload family. The env var forces the live path
 * in production sweeps; without a standing equivalence test it could
 * silently rot while every other test exercises only replay.
 *
 * Also pins RecordedTrace::prefix/slice boundary handling: empty and
 * full-copy edges, and the cross-column rebasing rules (producer
 * indices, store ordinals, forwarding candidates) that make a
 * mid-trace slice indistinguishable from a fresh recording.
 */

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "kernels/addition.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim::core
{
namespace
{

/** Every RunResult field exactly equal, doubles included. */
void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.exec.cycles, b.exec.cycles);
    EXPECT_EQ(a.exec.retired, b.exec.retired);
    EXPECT_EQ(a.exec.busy, b.exec.busy);
    EXPECT_EQ(a.exec.fuStall, b.exec.fuStall);
    EXPECT_EQ(a.exec.memL1Hit, b.exec.memL1Hit);
    EXPECT_EQ(a.exec.memL1Miss, b.exec.memL1Miss);
    EXPECT_EQ(a.exec.mixFu, b.exec.mixFu);
    EXPECT_EQ(a.exec.mixBranch, b.exec.mixBranch);
    EXPECT_EQ(a.exec.mixMemory, b.exec.mixMemory);
    EXPECT_EQ(a.exec.mixVis, b.exec.mixVis);
    EXPECT_EQ(a.exec.branches, b.exec.branches);
    EXPECT_EQ(a.exec.mispredicts, b.exec.mispredicts);
    EXPECT_EQ(a.exec.loadsL1, b.exec.loadsL1);
    EXPECT_EQ(a.exec.loadsL2, b.exec.loadsL2);
    EXPECT_EQ(a.exec.loadsMem, b.exec.loadsMem);
    EXPECT_EQ(a.exec.prefetchesIssued, b.exec.prefetchesIssued);
    EXPECT_EQ(a.exec.prefetchesDropped, b.exec.prefetchesDropped);

    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.writebacks, b.l1.writebacks);
    EXPECT_EQ(a.l1.prefetchDrops, b.l1.prefetchDrops);
    EXPECT_EQ(a.l1.combined, b.l1.combined);
    EXPECT_EQ(a.l1.blocked, b.l1.blocked);
    EXPECT_EQ(a.l1.missRate, b.l1.missRate);
    EXPECT_EQ(a.l1.mshrMeanOccupancy, b.l1.mshrMeanOccupancy);
    EXPECT_EQ(a.l1.mshrPeakOccupancy, b.l1.mshrPeakOccupancy);
    EXPECT_EQ(a.l1.mshrFracAtLeast2, b.l1.mshrFracAtLeast2);
    EXPECT_EQ(a.l1.mshrFracAtLeast5, b.l1.mshrFracAtLeast5);
    EXPECT_EQ(a.l1.loadOverlapMean, b.l1.loadOverlapMean);

    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.hits, b.l2.hits);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l2.writebacks, b.l2.writebacks);
    EXPECT_EQ(a.l2.prefetchDrops, b.l2.prefetchDrops);
    EXPECT_EQ(a.l2.combined, b.l2.combined);
    EXPECT_EQ(a.l2.blocked, b.l2.blocked);
    EXPECT_EQ(a.l2.missRate, b.l2.missRate);
    EXPECT_EQ(a.l2.mshrMeanOccupancy, b.l2.mshrMeanOccupancy);
    EXPECT_EQ(a.l2.mshrPeakOccupancy, b.l2.mshrPeakOccupancy);
    EXPECT_EQ(a.l2.mshrFracAtLeast2, b.l2.mshrFracAtLeast2);
    EXPECT_EQ(a.l2.mshrFracAtLeast5, b.l2.mshrFracAtLeast5);
    EXPECT_EQ(a.l2.loadOverlapMean, b.l2.loadOverlapMean);

    EXPECT_EQ(a.tbInstrs, b.tbInstrs);
    EXPECT_EQ(a.visOps, b.visOps);
    EXPECT_EQ(a.visOverheadOps, b.visOverheadOps);
}

/** RAII setter for MSIM_LIVE_JOBS so a failing test cannot leak it. */
class ScopedLiveJobs
{
  public:
    explicit ScopedLiveJobs(const char *value)
    {
        if (value)
            setenv("MSIM_LIVE_JOBS", value, 1);
        else
            unsetenv("MSIM_LIVE_JOBS");
    }

    ~ScopedLiveJobs() { unsetenv("MSIM_LIVE_JOBS"); }
};

/**
 * One benchmark per family (kernel / jpeg / mpeg): the live path, the
 * recorded path, and the env-var-selected Auto path must all produce
 * the same bits.
 */
void
checkLiveRecordedIdentity(const std::string &benchmark, Variant variant)
{
    const std::vector<Job> jobs = {
        {benchmark, variant, sim::outOfOrder4Way()},
        {benchmark, variant, sim::inOrder4Way()},
    };

    const std::vector<RunResult> recorded =
        runJobs(jobs, 1, JobMode::Recorded);
    const std::vector<RunResult> live = runJobs(jobs, 1, JobMode::Live);
    ASSERT_EQ(recorded.size(), jobs.size());
    ASSERT_EQ(live.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(recorded[i], live[i],
                        benchmark + " live vs recorded, job " +
                            std::to_string(i));
    }

    // MSIM_LIVE_JOBS=1 routes Auto onto the live path; it must agree
    // with both explicit modes.
    {
        ScopedLiveJobs env("1");
        const std::vector<RunResult> auto_live =
            runJobs(jobs, 1, JobMode::Auto);
        ASSERT_EQ(auto_live.size(), jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            expectIdentical(recorded[i], auto_live[i],
                            benchmark + " MSIM_LIVE_JOBS=1 auto, job " +
                                std::to_string(i));
        }
    }

    // MSIM_LIVE_JOBS=0 (and unset) leave Auto on the recorded path.
    {
        ScopedLiveJobs env("0");
        const std::vector<RunResult> auto_rec =
            runJobs(jobs, 1, JobMode::Auto);
        ASSERT_EQ(auto_rec.size(), jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            expectIdentical(recorded[i], auto_rec[i],
                            benchmark + " MSIM_LIVE_JOBS=0 auto, job " +
                                std::to_string(i));
        }
    }
}

TEST(LiveJobs, KernelFamily)
{
    checkLiveRecordedIdentity("addition", Variant::Vis);
}

TEST(LiveJobs, JpegFamily)
{
    checkLiveRecordedIdentity("djpeg-np", Variant::Vis);
}

TEST(LiveJobs, MpegFamily)
{
    checkLiveRecordedIdentity("mpeg-dec", Variant::Scalar);
}

// ---- RecordedTrace prefix/slice boundary handling --------------------

/** A small trace with real stores, loads, forwarding, and branches. */
prog::RecordedTrace
recordSmall()
{
    const sim::MachineConfig m = sim::outOfOrder4Way();
    return sim::recordTrace(
        [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 256, 32, 2);
        },
        m.skewArrays, m.visFeatures);
}

/** Column-for-column equality of two traces. */
void
expectSameTrace(const prog::RecordedTrace &a, const prog::RecordedTrace &b)
{
    EXPECT_EQ(a.opCol(), b.opCol());
    EXPECT_EQ(a.flagsCol(), b.flagsCol());
    EXPECT_EQ(a.numSrcsCol(), b.numSrcsCol());
    EXPECT_EQ(a.dstCol(), b.dstCol());
    EXPECT_EQ(a.srcsCol(), b.srcsCol());
    EXPECT_EQ(a.srcProdCol(), b.srcProdCol());
    EXPECT_EQ(a.memAddrCol(), b.memAddrCol());
    EXPECT_EQ(a.memKindCol(), b.memKindCol());
    EXPECT_EQ(a.memAuxCol(), b.memAuxCol());
    EXPECT_EQ(a.branchPcCol(), b.branchPcCol());
    EXPECT_EQ(a.siteCol(), b.siteCol());
    EXPECT_EQ(a.siteNames(), b.siteNames());
    EXPECT_EQ(a.maxValId(), b.maxValId());
    EXPECT_EQ(a.numStores(), b.numStores());
    EXPECT_EQ(a.numMemOps(), b.numMemOps());
}

TEST(TraceSlicing, PrefixEdgeCases)
{
    const prog::RecordedTrace t = recordSmall();
    ASSERT_GT(t.instCount(), 1000u);

    // n = 0: a fully empty trace.
    const prog::RecordedTrace empty = t.prefix(0);
    EXPECT_EQ(empty.instCount(), 0u);
    EXPECT_EQ(empty.numMemOps(), 0u);
    EXPECT_EQ(empty.numStores(), 0u);
    EXPECT_EQ(empty.maxValId(), 0u);
    EXPECT_TRUE(empty.srcsCol().empty());
    EXPECT_TRUE(empty.branchPcCol().empty());

    // n >= instCount(): an exact full copy, however far past the end.
    expectSameTrace(t.prefix(t.instCount()), t);
    expectSameTrace(t.prefix(t.instCount() + 12345), t);

    // prefix(n) is exactly slice(0, n).
    const u64 n = t.instCount() / 2;
    expectSameTrace(t.prefix(n), t.slice(0, n));
    EXPECT_EQ(t.prefix(n).instCount(), n);
}

TEST(TraceSlicing, PrefixSideStreamLengthsConsistent)
{
    const prog::RecordedTrace t = recordSmall();
    const u64 n = t.instCount() / 3;
    const prog::RecordedTrace p = t.prefix(n);

    // In a prefix every cross-column reference already points into the
    // kept range: nothing may have been clamped.
    u64 srcs = 0;
    for (u64 i = 0; i < n; ++i)
        srcs += t.numSrcsCol()[i];
    EXPECT_EQ(p.srcsCol().size(), srcs);
    EXPECT_EQ(p.srcProdCol().size(), srcs);
    for (u64 s = 0; s < srcs; ++s) {
        EXPECT_EQ(p.srcProdCol()[s], t.srcProdCol()[s]) << "src " << s;
        if (p.srcProdCol()[s] != prog::kNoProducer)
            EXPECT_LT(p.srcProdCol()[s], n) << "src " << s;
    }
    for (size_t m = 0; m < p.numMemOps(); ++m) {
        EXPECT_EQ(p.memAuxCol()[m], t.memAuxCol()[m]) << "memop " << m;
    }
}

TEST(TraceSlicing, MidSliceRebasesCrossColumnReferences)
{
    const prog::RecordedTrace t = recordSmall();
    const u64 begin = t.instCount() / 3;
    const u64 end = 2 * t.instCount() / 3;
    const prog::RecordedTrace::Mark mark = t.advance({}, begin);
    const prog::RecordedTrace s = t.slice(mark, end);
    ASSERT_EQ(s.instCount(), end - begin);

    // Per-instruction columns are unshifted copies. Site ids in
    // particular are registry ids, not positions: a slice keeps them
    // verbatim and carries the whole name table, so attribution over a
    // slice names the same kernels as over the full trace.
    for (u64 i = 0; i < s.instCount(); ++i) {
        EXPECT_EQ(s.opCol()[i], t.opCol()[begin + i]);
        EXPECT_EQ(s.dstCol()[i], t.dstCol()[begin + i]);
        EXPECT_EQ(s.siteCol()[i], t.siteCol()[begin + i]);
    }
    EXPECT_EQ(s.siteNames(), t.siteNames());

    // Producers rebase by begin; pre-slice producers become
    // kNoProducer, never a bogus in-slice index.
    for (size_t p = 0; p < s.srcProdCol().size(); ++p) {
        const u32 orig = t.srcProdCol()[mark.srcs + p];
        const u32 got = s.srcProdCol()[p];
        if (orig == prog::kNoProducer || orig < begin)
            EXPECT_EQ(got, prog::kNoProducer) << "src " << p;
        else
            EXPECT_EQ(got, orig - begin) << "src " << p;
        if (got != prog::kNoProducer)
            EXPECT_LT(got, s.instCount()) << "src " << p;
    }

    // Store ordinals rebase by the stores consumed before the slice;
    // a load's forwarding candidate that predates the slice is
    // clamped to kNoFwdStore (its old ordinal would otherwise alias a
    // different in-slice store).
    u32 sliceStores = 0;
    for (size_t m = 0; m < s.numMemOps(); ++m) {
        const u8 kind = t.memKindCol()[mark.memOps + m];
        const u32 orig = t.memAuxCol()[mark.memOps + m];
        const u32 got = s.memAuxCol()[m];
        EXPECT_EQ(s.memKindCol()[m], kind) << "memop " << m;
        EXPECT_EQ(s.memAddrCol()[m], t.memAddrCol()[mark.memOps + m]);
        if (kind == prog::kMemStore) {
            EXPECT_EQ(got, orig - mark.stores) << "memop " << m;
            EXPECT_EQ(got, sliceStores) << "memop " << m;
            ++sliceStores;
        } else if (kind == prog::kMemLoad) {
            if (orig == prog::kNoFwdStore || orig < mark.stores)
                EXPECT_EQ(got, prog::kNoFwdStore) << "memop " << m;
            else
                EXPECT_EQ(got, orig - mark.stores) << "memop " << m;
        }
    }
    EXPECT_EQ(s.numStores(), sliceStores);

    // maxValId covers sources naming pre-slice values, not just
    // destinations — replay cores size readiness tables from it.
    ValId maxSeen = 0;
    for (const ValId v : s.dstCol())
        maxSeen = std::max(maxSeen, v);
    for (const ValId v : s.srcsCol())
        maxSeen = std::max(maxSeen, v);
    EXPECT_EQ(s.maxValId(), maxSeen);
}

TEST(TraceSlicing, SliceClampsAndEmptyRanges)
{
    const prog::RecordedTrace t = recordSmall();
    // end past instCount clamps to a suffix slice.
    const u64 begin = t.instCount() - 100;
    const prog::RecordedTrace tail = t.slice(begin, ~u64{0});
    EXPECT_EQ(tail.instCount(), 100u);
    // begin >= end yields an empty trace, not a crash.
    EXPECT_EQ(t.slice(500, 500).instCount(), 0u);
    EXPECT_EQ(t.slice(t.instCount(), ~u64{0}).instCount(), 0u);
    // advance clamps to instCount.
    const auto m = t.advance({}, ~u64{0});
    EXPECT_EQ(m.inst, t.instCount());
    EXPECT_EQ(m.memOps, t.numMemOps());
    EXPECT_EQ(m.stores, t.numStores());
}

TEST(TraceSlicing, SiteColumnRecordedAndCounted)
{
    const prog::RecordedTrace t = recordSmall();

    // The VIS addition kernel annotates its vector loop, so beyond the
    // implicit "(top)" entry the registry must hold add.vloop, the
    // column must span every instruction, and every id must resolve.
    ASSERT_EQ(t.siteCol().size(), t.instCount());
    ASSERT_GE(t.siteNames().size(), 2u);
    EXPECT_EQ(t.siteNames()[0], "(top)");
    EXPECT_NE(std::find(t.siteNames().begin(), t.siteNames().end(),
                        "add.vloop"),
              t.siteNames().end());
    bool sawNonTop = false;
    for (const u16 s : t.siteCol()) {
        ASSERT_LT(s, t.siteNames().size());
        sawNonTop = sawNonTop || s != 0;
    }
    EXPECT_TRUE(sawNonTop);

    // byteSize() accounts every stream per column — including the site
    // column and its name table — so trace-cache budgets see the true
    // footprint. Pin the exact sum so a new column can't be forgotten
    // silently (memSize_ has no accessor but is one u8 per memory op).
    size_t names = t.siteNames().size() * sizeof(std::string);
    for (const std::string &n : t.siteNames())
        names += n.size();
    const size_t expected =
        t.opCol().size() * sizeof(u8) + t.flagsCol().size() * sizeof(u8) +
        t.numSrcsCol().size() * sizeof(u8) +
        t.dstCol().size() * sizeof(ValId) +
        t.siteCol().size() * sizeof(u16) +
        t.srcsCol().size() * sizeof(ValId) +
        t.srcProdCol().size() * sizeof(u32) +
        t.memAddrCol().size() * sizeof(Addr) +
        t.numMemOps() * sizeof(u8) + t.memKindCol().size() * sizeof(u8) +
        t.memAuxCol().size() * sizeof(u32) +
        t.branchPcCol().size() * sizeof(u32) + names;
    EXPECT_EQ(t.byteSize(), expected);

    // An empty prefix still carries the name table, nothing else from
    // the site column.
    const prog::RecordedTrace empty = t.prefix(0);
    EXPECT_TRUE(empty.siteCol().empty());
    EXPECT_EQ(empty.siteNames(), t.siteNames());
}

TEST(TraceSlicing, SlicesReplayStandalone)
{
    const prog::RecordedTrace t = recordSmall();
    const sim::MachineConfig m = sim::outOfOrder4Way();
    // A mid-trace slice is a self-contained trace: the exact replay
    // engine must retire exactly its instructions without tripping
    // any window/forwarding bookkeeping on rebased references.
    const u64 begin = t.instCount() / 4;
    const u64 end = begin + 5000;
    const sim::RunResult r = sim::replayTrace(t.slice(begin, end), m);
    EXPECT_EQ(r.exec.retired, end - begin);
    const sim::RunResult p = sim::replayTrace(t.prefix(4096), m);
    EXPECT_EQ(p.exec.retired, 4096u);
}

} // namespace
} // namespace msim::core
