/**
 * @file
 * Coverage for the MSIM_LIVE_JOBS escape hatch: runJobs' live path
 * (re-running the functional benchmark per job) must stay bit-identical
 * to the default recorded path (record once, replay per config), for
 * one benchmark per workload family. The env var forces the live path
 * in production sweeps; without a standing equivalence test it could
 * silently rot while every other test exercises only replay.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "sim/machine.hh"

namespace msim::core
{
namespace
{

/** Every RunResult field exactly equal, doubles included. */
void
expectIdentical(const sim::RunResult &a, const sim::RunResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.exec.cycles, b.exec.cycles);
    EXPECT_EQ(a.exec.retired, b.exec.retired);
    EXPECT_EQ(a.exec.busy, b.exec.busy);
    EXPECT_EQ(a.exec.fuStall, b.exec.fuStall);
    EXPECT_EQ(a.exec.memL1Hit, b.exec.memL1Hit);
    EXPECT_EQ(a.exec.memL1Miss, b.exec.memL1Miss);
    EXPECT_EQ(a.exec.mixFu, b.exec.mixFu);
    EXPECT_EQ(a.exec.mixBranch, b.exec.mixBranch);
    EXPECT_EQ(a.exec.mixMemory, b.exec.mixMemory);
    EXPECT_EQ(a.exec.mixVis, b.exec.mixVis);
    EXPECT_EQ(a.exec.branches, b.exec.branches);
    EXPECT_EQ(a.exec.mispredicts, b.exec.mispredicts);
    EXPECT_EQ(a.exec.loadsL1, b.exec.loadsL1);
    EXPECT_EQ(a.exec.loadsL2, b.exec.loadsL2);
    EXPECT_EQ(a.exec.loadsMem, b.exec.loadsMem);
    EXPECT_EQ(a.exec.prefetchesIssued, b.exec.prefetchesIssued);
    EXPECT_EQ(a.exec.prefetchesDropped, b.exec.prefetchesDropped);

    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.writebacks, b.l1.writebacks);
    EXPECT_EQ(a.l1.prefetchDrops, b.l1.prefetchDrops);
    EXPECT_EQ(a.l1.combined, b.l1.combined);
    EXPECT_EQ(a.l1.blocked, b.l1.blocked);
    EXPECT_EQ(a.l1.missRate, b.l1.missRate);
    EXPECT_EQ(a.l1.mshrMeanOccupancy, b.l1.mshrMeanOccupancy);
    EXPECT_EQ(a.l1.mshrPeakOccupancy, b.l1.mshrPeakOccupancy);
    EXPECT_EQ(a.l1.mshrFracAtLeast2, b.l1.mshrFracAtLeast2);
    EXPECT_EQ(a.l1.mshrFracAtLeast5, b.l1.mshrFracAtLeast5);
    EXPECT_EQ(a.l1.loadOverlapMean, b.l1.loadOverlapMean);

    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.hits, b.l2.hits);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l2.writebacks, b.l2.writebacks);
    EXPECT_EQ(a.l2.prefetchDrops, b.l2.prefetchDrops);
    EXPECT_EQ(a.l2.combined, b.l2.combined);
    EXPECT_EQ(a.l2.blocked, b.l2.blocked);
    EXPECT_EQ(a.l2.missRate, b.l2.missRate);
    EXPECT_EQ(a.l2.mshrMeanOccupancy, b.l2.mshrMeanOccupancy);
    EXPECT_EQ(a.l2.mshrPeakOccupancy, b.l2.mshrPeakOccupancy);
    EXPECT_EQ(a.l2.mshrFracAtLeast2, b.l2.mshrFracAtLeast2);
    EXPECT_EQ(a.l2.mshrFracAtLeast5, b.l2.mshrFracAtLeast5);
    EXPECT_EQ(a.l2.loadOverlapMean, b.l2.loadOverlapMean);

    EXPECT_EQ(a.tbInstrs, b.tbInstrs);
    EXPECT_EQ(a.visOps, b.visOps);
    EXPECT_EQ(a.visOverheadOps, b.visOverheadOps);
}

/** RAII setter for MSIM_LIVE_JOBS so a failing test cannot leak it. */
class ScopedLiveJobs
{
  public:
    explicit ScopedLiveJobs(const char *value)
    {
        if (value)
            setenv("MSIM_LIVE_JOBS", value, 1);
        else
            unsetenv("MSIM_LIVE_JOBS");
    }

    ~ScopedLiveJobs() { unsetenv("MSIM_LIVE_JOBS"); }
};

/**
 * One benchmark per family (kernel / jpeg / mpeg): the live path, the
 * recorded path, and the env-var-selected Auto path must all produce
 * the same bits.
 */
void
checkLiveRecordedIdentity(const std::string &benchmark, Variant variant)
{
    const std::vector<Job> jobs = {
        {benchmark, variant, sim::outOfOrder4Way()},
        {benchmark, variant, sim::inOrder4Way()},
    };

    const std::vector<RunResult> recorded =
        runJobs(jobs, 1, JobMode::Recorded);
    const std::vector<RunResult> live = runJobs(jobs, 1, JobMode::Live);
    ASSERT_EQ(recorded.size(), jobs.size());
    ASSERT_EQ(live.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(recorded[i], live[i],
                        benchmark + " live vs recorded, job " +
                            std::to_string(i));
    }

    // MSIM_LIVE_JOBS=1 routes Auto onto the live path; it must agree
    // with both explicit modes.
    {
        ScopedLiveJobs env("1");
        const std::vector<RunResult> auto_live =
            runJobs(jobs, 1, JobMode::Auto);
        ASSERT_EQ(auto_live.size(), jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            expectIdentical(recorded[i], auto_live[i],
                            benchmark + " MSIM_LIVE_JOBS=1 auto, job " +
                                std::to_string(i));
        }
    }

    // MSIM_LIVE_JOBS=0 (and unset) leave Auto on the recorded path.
    {
        ScopedLiveJobs env("0");
        const std::vector<RunResult> auto_rec =
            runJobs(jobs, 1, JobMode::Auto);
        ASSERT_EQ(auto_rec.size(), jobs.size());
        for (size_t i = 0; i < jobs.size(); ++i) {
            expectIdentical(recorded[i], auto_rec[i],
                            benchmark + " MSIM_LIVE_JOBS=0 auto, job " +
                                std::to_string(i));
        }
    }
}

TEST(LiveJobs, KernelFamily)
{
    checkLiveRecordedIdentity("addition", Variant::Vis);
}

TEST(LiveJobs, JpegFamily)
{
    checkLiveRecordedIdentity("djpeg-np", Variant::Vis);
}

TEST(LiveJobs, MpegFamily)
{
    checkLiveRecordedIdentity("mpeg-dec", Variant::Scalar);
}

} // namespace
} // namespace msim::core
