/** @file Tests for the multiprocessor extension (shared L2 + DRAM). */

#include <cmath>

#include <gtest/gtest.h>

#include "kernels/addition.hh"
#include "kernels/conv.hh"
#include "prog/trace_builder.hh"
#include "sim/multicore.hh"

namespace msim::sim
{
namespace
{

using prog::TraceBuilder;
using prog::Variant;

Generator
convSlice(unsigned rows)
{
    return [rows](TraceBuilder &tb) {
        kernels::runConv(tb, Variant::Vis, 128, rows);
    };
}

Generator
additionSlice(unsigned rows)
{
    return [rows](TraceBuilder &tb) {
        kernels::runAddition(tb, Variant::Vis, 128, rows, 3);
    };
}

TEST(Multicore, SingleCoreMatchesWorkShape)
{
    const auto r = runTraceMulti({convSlice(32)}, outOfOrder4Way());
    ASSERT_EQ(r.cores.size(), 1u);
    EXPECT_GT(r.cores[0].retired, 10000u);
    EXPECT_EQ(r.makespan, r.cores[0].cycles);
    EXPECT_GT(r.l2.accesses, 0u);
}

TEST(Multicore, ComputeBoundWorkScales)
{
    const auto one = runTraceMulti({convSlice(32)}, outOfOrder4Way());
    const auto two = runTraceMulti({convSlice(16), convSlice(16)},
                                   outOfOrder4Way());
    const double speedup =
        double(one.makespan) / double(two.makespan);
    EXPECT_GT(speedup, 1.4);
    EXPECT_LE(speedup, 2.3);
}

TEST(Multicore, MemoryBoundWorkScalesWorse)
{
    const auto one =
        runTraceMulti({additionSlice(64)}, outOfOrder4Way());
    std::vector<Generator> four;
    for (int i = 0; i < 4; ++i)
        four.push_back(additionSlice(16));
    const auto multi = runTraceMulti(four, outOfOrder4Way());
    const double speedup =
        double(one.makespan) / double(multi.makespan);
    // Shared-memory contention keeps this well under linear.
    EXPECT_LT(speedup, 3.0);
    EXPECT_GE(speedup, 0.9);
}

TEST(Multicore, CoresUseDisjointAddressRegions)
{
    // Two identical workloads must still generate distinct L2 traffic
    // (no aliasing between the cores' arenas).
    const auto two = runTraceMulti({additionSlice(16), additionSlice(16)},
                                   outOfOrder4Way());
    const auto one = runTraceMulti({additionSlice(16)}, outOfOrder4Way());
    // Each core streams its own copy: roughly double the DRAM lines.
    EXPECT_GT(two.dramReads + two.dramWrites,
              (one.dramReads + one.dramWrites) * 3 / 2);
}

TEST(Multicore, Deterministic)
{
    const auto a = runTraceMulti({convSlice(16), convSlice(16)},
                                 outOfOrder4Way());
    const auto b = runTraceMulti({convSlice(16), convSlice(16)},
                                 outOfOrder4Way());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST(Multicore, QuantumSizeIsSecondOrder)
{
    const auto fine = runTraceMulti({convSlice(16), convSlice(16)},
                                    outOfOrder4Way(), 100);
    const auto coarse = runTraceMulti({convSlice(16), convSlice(16)},
                                      outOfOrder4Way(), 2000);
    const double delta = std::abs(double(fine.makespan) -
                                  double(coarse.makespan));
    EXPECT_LT(delta / double(fine.makespan), 0.10);
}

} // namespace
} // namespace msim::sim
