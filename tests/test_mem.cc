/** @file Unit tests for the cache hierarchy, MSHRs, and DRAM model. */

#include <algorithm>

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/config.hh"
#include "mem/dram.hh"
#include "mem/hierarchy.hh"
#include "mem/ref_cache.hh"

namespace msim::mem
{
namespace
{

MemConfig
smallConfig()
{
    MemConfig m;
    m.l1 = CacheConfig{1024, 2, 64, 2, 2, 12, 8};
    m.l2 = CacheConfig{4096, 4, 64, 1, 20, 12, 8};
    return m;
}

TEST(Dram, LatencyAndBanking)
{
    DramConfig cfg;
    Dram dram(cfg);
    // Two accesses to the same bank serialize on bank occupancy.
    const auto a = dram.accessLine(0, AccessKind::Load, 0);
    const auto b = dram.accessLine(4, AccessKind::Load, 0); // bank 0 again
    EXPECT_EQ(a.ready, cfg.totalLatency);
    EXPECT_EQ(b.ready, cfg.bankBusy + cfg.totalLatency);
    EXPECT_TRUE(b.contended);
    // A different bank is unaffected.
    const auto c = dram.accessLine(1, AccessKind::Load, 0);
    EXPECT_EQ(c.ready, cfg.totalLatency);
    EXPECT_EQ(dram.reads(), 3u);
}

TEST(Dram, WritebacksCountedAsWrites)
{
    Dram dram(DramConfig{});
    dram.accessLine(0, AccessKind::Writeback, 0);
    EXPECT_EQ(dram.writes(), 1u);
}

TEST(Cache, HitAfterMiss)
{
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    const auto miss = l1.access(0x100, AccessKind::Load, 0);
    EXPECT_EQ(miss.level, HitLevel::Memory);
    EXPECT_GE(miss.ready, 100u);
    const auto hit = l1.access(0x104, AccessKind::Load, miss.ready + 10);
    EXPECT_EQ(hit.level, HitLevel::L1);
    EXPECT_EQ(hit.ready, miss.ready + 10 + 2);
    EXPECT_EQ(l1.misses(), 1u);
    EXPECT_EQ(l1.hits(), 1u);
}

TEST(Cache, LruReplacement)
{
    // 1K, 2-way, 64B lines -> 8 sets. Three lines mapping to set 0:
    // addresses 0, 512, 1024.
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    Cycle t = 0;
    t = l1.access(0, AccessKind::Load, t).ready;
    t = l1.access(512, AccessKind::Load, t).ready;
    // Touch 0 so 512 becomes LRU.
    t = l1.access(0, AccessKind::Load, t).ready;
    t = l1.access(1024, AccessKind::Load, t).ready; // evicts 512
    const auto r0 = l1.access(0, AccessKind::Load, t);
    EXPECT_EQ(r0.level, HitLevel::L1);
    const auto r512 = l1.access(512, AccessKind::Load, r0.ready);
    EXPECT_EQ(r512.level, HitLevel::Memory);
}

TEST(Cache, DirtyEvictionWritesBack)
{
    DramConfig dcfg;
    Dram dram(dcfg);
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    Cycle t = 0;
    t = l1.access(0, AccessKind::Store, t).ready;     // dirty line 0
    t = l1.access(512, AccessKind::Load, t).ready;
    t = l1.access(1024, AccessKind::Load, t).ready;   // evicts dirty 0
    EXPECT_EQ(l1.writebacks(), 1u);
    EXPECT_GE(dram.writes(), 1u);
}

TEST(Cache, MshrCombinesRequestsToSameLine)
{
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    const auto first = l1.access(0, AccessKind::Load, 0);
    // A second request to the in-flight line combines; it completes at
    // the fill, not after a second memory access.
    const auto second = l1.access(8, AccessKind::Load, 1);
    EXPECT_EQ(second.ready, first.ready);
    EXPECT_EQ(l1.misses(), 1u);
    EXPECT_EQ(l1.combinedRequests(), 1u);
    EXPECT_EQ(dram.reads(), 1u);
}

TEST(Cache, CombineLimitBlocksInput)
{
    // maxCombines 4: the 5th request to an in-flight line must wait for
    // the fill and then hits.
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 4, 2, 12, 4}, dram, HitLevel::L1);
    const auto first = l1.access(0, AccessKind::Store, 0);
    Cycle t = 1;
    for (int i = 1; i < 4; ++i)
        l1.access(static_cast<Addr>(8 * i), AccessKind::Store, t++);
    const auto blocked = l1.access(40, AccessKind::Store, t);
    EXPECT_GE(blocked.ready, first.ready);
    EXPECT_TRUE(blocked.contended);
    EXPECT_GT(l1.blockedRequests(), 0u);
}

TEST(Cache, MshrExhaustionBlocksEvenHits)
{
    // 2 MSHRs: two outstanding misses block a subsequent hit.
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 4, 2, 2, 8}, dram, HitLevel::L1);
    Cycle t = 0;
    const auto warm = l1.access(0, AccessKind::Load, t); // line 0 cached
    t = warm.ready;
    // Misses to sets 1, 2 and 3 so the warmed line 0 is not evicted.
    const auto m1 = l1.access(4096 + 64, AccessKind::Load, t);
    const auto m2 = l1.access(8192 + 128, AccessKind::Load, t + 1);
    // Third miss finds no MSHR: the cache input backs up.
    const auto m3 = l1.access(16384 + 192, AccessKind::Load, t + 2);
    EXPECT_TRUE(m3.contended);
    EXPECT_GT(m3.ready, std::max(m1.ready, m2.ready));
    // With the input blocked, even a hit to the resident line 0 waits.
    const auto hit = l1.access(0, AccessKind::Load, t + 3);
    EXPECT_EQ(hit.level, HitLevel::L1);
    EXPECT_GT(hit.ready, std::min(m1.ready, m2.ready));
    EXPECT_TRUE(hit.contended);
}

TEST(Cache, PrefetchDroppedWhenMshrsFull)
{
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 4, 2, 2, 8}, dram, HitLevel::L1);
    l1.access(4096, AccessKind::Load, 0);
    l1.access(8192, AccessKind::Load, 1);
    const auto p = l1.access(16384, AccessKind::Prefetch, 2);
    EXPECT_TRUE(p.dropped);
    EXPECT_EQ(l1.prefetchDrops(), 1u);
}

TEST(Cache, PrefetchWarmsTheCache)
{
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    const auto p = l1.access(0x200, AccessKind::Prefetch, 0);
    EXPECT_FALSE(p.dropped);
    // Prefetch returns immediately for the issuer...
    EXPECT_LE(p.ready, 1u);
    // ...and a later demand load hits.
    const auto hit = l1.access(0x200, AccessKind::Load, 200);
    EXPECT_EQ(hit.level, HitLevel::L1);
}

TEST(Cache, PortContentionSerializes)
{
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 1, 2, 12, 8}, dram, HitLevel::L1);
    Cycle t = 0;
    t = l1.access(0, AccessKind::Load, 0).ready;
    // Three hits issued the same cycle on a single-ported cache.
    const auto a = l1.access(0, AccessKind::Load, t);
    const auto b = l1.access(8, AccessKind::Load, t);
    const auto c = l1.access(16, AccessKind::Load, t);
    EXPECT_EQ(a.ready, t + 2);
    EXPECT_EQ(b.ready, t + 3);
    EXPECT_EQ(c.ready, t + 4);
}

TEST(Cache, MshrOccupancyTracked)
{
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    l1.access(4096, AccessKind::Load, 0);
    l1.access(8192, AccessKind::Load, 1);
    l1.access(12288, AccessKind::Load, 2);
    // Force an occupancy sample well after the misses began.
    l1.access(4096, AccessKind::Load, 50);
    EXPECT_GE(l1.mshrOccupancy().peakOccupancy(), 2u);
    EXPECT_GT(l1.loadOverlap().samples(), 0u);
}

TEST(Hierarchy, L2HitFasterThanMemory)
{
    Hierarchy h(smallConfig());
    // First access: L1 and L2 miss, goes to memory.
    const auto miss = h.access(0, AccessKind::Load, 0);
    EXPECT_EQ(miss.level, HitLevel::Memory);
    // Evict line 0 from tiny L1 by touching its set; L2 still holds it.
    Cycle t = miss.ready;
    t = h.access(512, AccessKind::Load, t).ready;
    t = h.access(1024, AccessKind::Load, t).ready;
    const auto l2hit = h.access(0, AccessKind::Load, t);
    EXPECT_EQ(l2hit.level, HitLevel::L2);
    EXPECT_LT(l2hit.ready - t, 60u);
    EXPECT_GE(l2hit.ready - t, 20u);
}

TEST(Hierarchy, StatsExposed)
{
    Hierarchy h(smallConfig());
    h.access(0, AccessKind::Load, 0);
    EXPECT_EQ(h.l1().accesses(), 1u);
    EXPECT_EQ(h.l2().accesses(), 1u);
    EXPECT_EQ(h.dram().reads(), 1u);
}

TEST(Cache, BadGeometryRejected)
{
    Dram dram(DramConfig{});
    EXPECT_DEATH(
        {
            Cache bad(CacheConfig{1000, 3, 64, 2, 2, 12, 8}, dram,
                      HitLevel::L1);
        },
        "");
}

/**
 * Exact-value MSHR scenarios, typed over both the fast Cache and the
 * preserved RefCache so any divergence between the two models fails
 * loudly with the precise counter or timestamp that moved.
 *
 * All timings below are hand-derived from the model: DRAM total
 * latency 100, bank busy 25, 4-way interleave; L1 hit latency 2.
 */
template <typename C>
class MshrExactTest : public ::testing::Test
{
};

using CacheImpls = ::testing::Types<Cache, RefCache>;
TYPED_TEST_SUITE(MshrExactTest, CacheImpls);

TYPED_TEST(MshrExactTest, CombineSlotExhaustionExact)
{
    // maxCombines 2: the miss takes the first slot, one load combines,
    // the third request finds the slots full, blocks until the fill at
    // 102, retries, and hits at 102+2.
    Dram dram(DramConfig{});
    TypeParam l1(CacheConfig{1024, 2, 64, 2, 2, 12, 2}, dram, HitLevel::L1);
    const auto r1 = l1.access(0, AccessKind::Load, 0);
    EXPECT_EQ(r1.ready, 102u); // port at 0, DRAM bank 0 from 2
    EXPECT_EQ(r1.level, HitLevel::Memory);
    const auto r2 = l1.access(8, AccessKind::Load, 1);
    EXPECT_EQ(r2.ready, 102u); // combined onto the in-flight fill
    EXPECT_EQ(r2.level, HitLevel::Memory);
    const auto r3 = l1.access(16, AccessKind::Load, 2);
    EXPECT_EQ(r3.ready, 104u); // blocked until 102, retried, hit
    EXPECT_EQ(r3.level, HitLevel::L1);
    EXPECT_TRUE(r3.contended);
    EXPECT_EQ(l1.accesses(), 3u);
    EXPECT_EQ(l1.hits(), 1u);
    EXPECT_EQ(l1.misses(), 1u);
    EXPECT_EQ(l1.loadMisses(), 1u);
    EXPECT_EQ(l1.combinedRequests(), 1u);
    EXPECT_EQ(l1.blockedRequests(), 1u);
    EXPECT_EQ(dram.reads(), 1u);
}

TYPED_TEST(MshrExactTest, FullMshrInputBlockingExact)
{
    // 2 MSHRs fill at 102 and 103; the third miss blocks the input
    // until the earliest fill (102) and then allocates, and even a hit
    // to a resident line issued at 3 is held until 102.
    Dram dram(DramConfig{});
    TypeParam l1(CacheConfig{1024, 2, 64, 2, 2, 2, 8}, dram, HitLevel::L1);
    const auto r1 = l1.access(64, AccessKind::Load, 0);
    EXPECT_EQ(r1.ready, 102u); // DRAM bank 1 from 2
    const auto r2 = l1.access(128, AccessKind::Load, 1);
    EXPECT_EQ(r2.ready, 103u); // DRAM bank 2 from 3
    const auto r3 = l1.access(192, AccessKind::Load, 2);
    EXPECT_TRUE(r3.contended);
    EXPECT_EQ(r3.ready, 204u); // retried at 102, DRAM bank 3 from 104
    EXPECT_EQ(r3.level, HitLevel::Memory);
    const auto hit = l1.access(64, AccessKind::Load, 3);
    EXPECT_TRUE(hit.contended);
    EXPECT_EQ(hit.ready, 104u); // started at 102 behind the block
    EXPECT_EQ(hit.level, HitLevel::L1);
    EXPECT_EQ(l1.accesses(), 4u);
    EXPECT_EQ(l1.hits(), 1u);
    EXPECT_EQ(l1.misses(), 3u);
    EXPECT_EQ(l1.loadMisses(), 3u);
    EXPECT_EQ(l1.blockedRequests(), 1u);
    EXPECT_EQ(l1.writebacks(), 0u);
}

TYPED_TEST(MshrExactTest, PrefetchDropsExact)
{
    // Miss-path drop: with both MSHRs busy a prefetch is discarded
    // immediately (non-binding), completing at its port start cycle.
    Dram dram(DramConfig{});
    TypeParam l1(CacheConfig{1024, 2, 64, 2, 2, 2, 8}, dram, HitLevel::L1);
    const auto r1 = l1.access(4096, AccessKind::Load, 0);
    EXPECT_EQ(r1.ready, 102u);
    const auto r2 = l1.access(8192, AccessKind::Load, 1);
    EXPECT_EQ(r2.ready, 127u); // same DRAM bank: fill waits for 27
    const auto p = l1.access(16384, AccessKind::Prefetch, 2);
    EXPECT_TRUE(p.dropped);
    EXPECT_EQ(p.ready, 2u);
    EXPECT_EQ(l1.prefetchDrops(), 1u);
    EXPECT_EQ(l1.misses(), 2u); // dropped prefetch is not a miss
    EXPECT_EQ(l1.blockedRequests(), 0u);
    EXPECT_EQ(dram.reads(), 2u);

    // Combine-path drop: a prefetch to an in-flight line whose combine
    // slots are exhausted is also discarded, not blocked.
    Dram dram2(DramConfig{});
    TypeParam l1b(CacheConfig{1024, 2, 64, 2, 2, 12, 1}, dram2,
                  HitLevel::L1);
    l1b.access(0, AccessKind::Load, 0);
    const auto p2 = l1b.access(8, AccessKind::Prefetch, 1);
    EXPECT_TRUE(p2.dropped);
    EXPECT_EQ(p2.ready, 1u);
    EXPECT_EQ(l1b.prefetchDrops(), 1u);
    EXPECT_EQ(l1b.combinedRequests(), 0u);
    EXPECT_EQ(l1b.blockedRequests(), 0u);
}

TYPED_TEST(MshrExactTest, DirtyVictimWritebackOrderingExact)
{
    // The dirty victim's writeback is issued to the next level at the
    // incoming line's fill time, not at the access time — observable as
    // DRAM bank-0 occupancy [306, 331) delaying a later read.
    Dram dram(DramConfig{});
    TypeParam l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    const auto s = l1.access(0, AccessKind::Store, 0); // set 0, dirty
    EXPECT_EQ(s.ready, 102u);
    const auto r2 = l1.access(512, AccessKind::Load, 102); // set 0
    EXPECT_EQ(r2.ready, 204u); // bank 0 again: starts at 104
    const auto r3 = l1.access(1024, AccessKind::Load, 204); // evicts 0
    EXPECT_EQ(r3.ready, 306u);
    EXPECT_EQ(l1.writebacks(), 1u);
    EXPECT_EQ(dram.writes(), 1u);
    // A read mapping to bank 0 issued after the eviction waits behind
    // the writeback that started at the fill (306 + 25 bank busy).
    const auto probe = l1.access(256, AccessKind::Load, 320);
    EXPECT_EQ(probe.ready, 431u); // bank free at 331, +100 latency
    EXPECT_EQ(dram.reads(), 4u);
    EXPECT_EQ(l1.misses(), 4u);
    EXPECT_EQ(l1.hits(), 0u);
}

/** Streaming sweep: miss rate matches 1/(accesses-per-line). */
class StreamMissTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(StreamMissTest, MissRateMatchesStride)
{
    const unsigned stride = GetParam();
    Dram dram(DramConfig{});
    Cache l1(CacheConfig{1024, 2, 64, 2, 2, 12, 8}, dram, HitLevel::L1);
    Cycle t = 0;
    const unsigned n = 2048;
    for (unsigned i = 0; i < n; ++i) {
        const auto r = l1.access(0x40000 + Addr{i} * stride,
                                 AccessKind::Load, t);
        t = r.ready;
    }
    const double expected =
        stride >= 64 ? 1.0 : static_cast<double>(stride) / 64.0;
    EXPECT_NEAR(l1.missRate(), expected, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Strides, StreamMissTest,
                         ::testing::Values(1u, 4u, 16u, 64u, 128u));

} // namespace
} // namespace msim::mem
