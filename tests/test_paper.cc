/**
 * @file
 * Reproduction-invariant tests: the paper's headline qualitative claims
 * must hold on this apparatus. These run on moderately sized workloads
 * (smaller than the bench harnesses, larger than the unit tests) so
 * they stay meaningful but fast.
 */

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "jpeg/traced.hh"
#include "kernels/addition.hh"
#include "kernels/blend.hh"
#include "kernels/dotprod.hh"
#include "kernels/scaling.hh"
#include "kernels/thresh.hh"
#include "mpeg/traced.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim
{
namespace
{

using prog::TraceBuilder;
using prog::Variant;
using sim::Generator;

sim::RunResult
run(const Generator &gen, const sim::MachineConfig &m)
{
    return sim::runTrace(gen, m);
}

/** Moderate-size kernel generators by name (avoids the differing
 *  default-parameter signatures of the kernel entry points). */
Generator
kernelGen(const char *name, Variant var)
{
    const std::string n = name;
    return [n, var](TraceBuilder &tb) {
        if (n == "addition")
            kernels::runAddition(tb, var, 160, 64, 3);
        else if (n == "blend")
            kernels::runBlend(tb, var, 160, 64, 3);
        else if (n == "scaling")
            kernels::runScaling(tb, var, 160, 64, 3);
        else if (n == "thresh")
            kernels::runThresh(tb, var, 160, 64, 3);
    };
}

/** Section 3.1: multiple issue helps a little, OOO helps a lot. */
TEST(PaperClaims, IlpSpeedupsInRange)
{
    const auto gen = kernelGen("blend", Variant::Scalar);
    const double t1 =
        double(run(gen, sim::inOrder1Way()).exec.cycles);
    const double t4 =
        double(run(gen, sim::inOrder4Way()).exec.cycles);
    const double to =
        double(run(gen, sim::outOfOrder4Way()).exec.cycles);
    const double multi = t1 / t4;
    const double ilp = t1 / to;
    EXPECT_GE(multi, 1.05); // paper: 1.1X - 1.4X
    EXPECT_LE(multi, 1.8);
    EXPECT_GE(ilp, 1.5); // paper: 2.3X - 4.2X
    EXPECT_LE(ilp, 8.0);
}

/** Section 3.2: VIS gives 1.1X-4.2X on top of the ooo machine. */
TEST(PaperClaims, VisSpeedupInRange)
{
    const auto base =
        run(kernelGen("scaling", Variant::Scalar),
            sim::outOfOrder4Way());
    const auto vis = run(kernelGen("scaling", Variant::Vis),
                         sim::outOfOrder4Way());
    const double speedup =
        double(base.exec.cycles) / double(vis.exec.cycles);
    EXPECT_GE(speedup, 1.1);
    EXPECT_LE(speedup, 6.0);
}

/** Section 3.3: ILP+VIS makes the streaming kernels memory-bound. */
TEST(PaperClaims, StreamingKernelsGoMemoryBound)
{
    for (const char *name : {"addition", "blend", "scaling", "thresh"}) {
        const auto r = run(kernelGen(name, Variant::Vis),
                           sim::outOfOrder4Way());
        const double mem =
            r.exec.fracMemL1Hit() + r.exec.fracMemL1Miss();
        EXPECT_GT(mem, 0.40) << name << " not memory-bound";
    }
}

/** Section 4.2: with prefetching they revert to compute-bound. */
TEST(PaperClaims, PrefetchRevertsToComputeBound)
{
    for (const char *name : {"addition", "blend"}) {
        const auto r = run(kernelGen(name, Variant::VisPrefetch),
                           sim::outOfOrder4Way());
        const double mem =
            r.exec.fracMemL1Hit() + r.exec.fracMemL1Miss();
        EXPECT_LT(mem, 0.50) << name << " still memory-bound with PF";
    }
}

/** Section 3.2.3: dotprod benefits least (16x16 multiply emulation). */
TEST(PaperClaims, DotprodIsTheWorstVisKernel)
{
    auto ratio = [](const Generator &s, const Generator &v) {
        const auto rs = run(s, sim::outOfOrder4Way());
        const auto rv = run(v, sim::outOfOrder4Way());
        return double(rv.tbInstrs) / double(rs.tbInstrs);
    };
    const double dot = ratio(
        [](TraceBuilder &tb) {
            kernels::runDotprod(tb, Variant::Scalar, 32768);
        },
        [](TraceBuilder &tb) {
            kernels::runDotprod(tb, Variant::Vis, 32768);
        });
    const double blend =
        ratio(kernelGen("blend", Variant::Scalar),
              kernelGen("blend", Variant::Vis));
    EXPECT_GT(dot, blend);
}

/** Section 3.2.2: VIS removes thresh's hard-to-predict branches. */
TEST(PaperClaims, VisFixesThreshMispredicts)
{
    const auto base =
        run(kernelGen("thresh", Variant::Scalar),
            sim::outOfOrder4Way());
    const auto vis = run(kernelGen("thresh", Variant::Vis),
                         sim::outOfOrder4Way());
    EXPECT_GT(base.exec.mispredictRate(), 0.03); // paper: ~6%
    EXPECT_LT(vis.exec.mispredictRate(), 0.01);  // paper: ~0%
}

/** Section 3.2.2: pdist collapses mpeg-enc's motion estimation. */
TEST(PaperClaims, PdistShrinksMpegEnc)
{
    mpeg::SeqConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    auto gen = [&cfg](Variant v) {
        return [&cfg, v](TraceBuilder &tb) { mpeg::runMpegEnc(tb, v, cfg); };
    };
    const auto base = run(gen(Variant::Scalar), sim::outOfOrder4Way());
    const auto vis = run(gen(Variant::Vis), sim::outOfOrder4Way());
    EXPECT_LT(double(vis.tbInstrs), 0.6 * double(base.tbInstrs));
    EXPECT_LT(vis.exec.mispredictRate(), base.exec.mispredictRate());
}

/** Section 4.1: blocked (non-progressive) JPEG is cache-insensitive. */
TEST(PaperClaims, BaselineJpegCacheInsensitive)
{
    auto gen = [](TraceBuilder &tb) {
        jpeg::runCjpeg(tb, Variant::Vis, /*progressive=*/false, 96, 64);
    };
    const auto small = run(gen, sim::withL2Size(32 << 10));
    const auto big = run(gen, sim::withL2Size(2 << 20));
    const double delta = std::abs(double(small.exec.cycles) -
                                  double(big.exec.cycles));
    EXPECT_LT(delta / double(small.exec.cycles), 0.08);
}

} // namespace
} // namespace msim
