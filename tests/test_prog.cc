/** @file Unit tests for the arena and trace builder. */

#include <vector>

#include <gtest/gtest.h>

#include "isa/inst.hh"
#include "prog/arena.hh"
#include "prog/trace_builder.hh"

namespace msim::prog
{
namespace
{

using isa::Inst;
using isa::Op;

/** Sink that records every instruction. */
class RecordingSink : public isa::InstSink
{
  public:
    void feed(const Inst &inst) override { insts.push_back(inst); }
    void finish() override { finished = true; }

    std::vector<Inst> insts;
    bool finished = false;
};

TEST(Arena, ReadWriteRoundtrip)
{
    Arena a;
    const Addr p = a.alloc(64, "x");
    a.write(p, 4, 0xdeadbeef);
    EXPECT_EQ(a.read(p, 4), 0xdeadbeefu);
    a.write(p + 8, 8, 0x1122334455667788ull);
    EXPECT_EQ(a.read(p + 8, 8), 0x1122334455667788ull);
    // Little-endian byte order.
    EXPECT_EQ(a.read(p + 8, 1), 0x88u);
}

TEST(Arena, MaskedWrite)
{
    Arena a;
    const Addr p = a.alloc(8);
    a.write(p, 8, 0x1111111111111111ull);
    a.writeMasked(p, 0x2222222222222222ull, 0x0f);
    EXPECT_EQ(a.read(p, 8), 0x1111111122222222ull);
}

TEST(Arena, BulkCopies)
{
    Arena a;
    const Addr p = a.alloc(16);
    const u8 src[4] = {1, 2, 3, 4};
    a.writeBytes(p, src, 4);
    u8 dst[4] = {};
    a.readBytes(p, dst, 4);
    EXPECT_EQ(dst[2], 3);
}

TEST(Arena, AllocationsDisjointAndAligned)
{
    Arena a;
    const Addr p1 = a.alloc(100, "a", 64);
    const Addr p2 = a.alloc(100, "b", 64);
    EXPECT_EQ(p1 % 64, 0u);
    EXPECT_EQ(p2 % 64, 0u);
    EXPECT_GE(p2, p1 + 100);
}

TEST(Arena, SkewChangesRelativeOffsets)
{
    Arena skewed(true), packed(false);
    const Addr s1 = skewed.alloc(4096, "a", 64);
    const Addr s2 = skewed.alloc(4096, "b", 64);
    const Addr q1 = packed.alloc(4096, "a", 64);
    const Addr q2 = packed.alloc(4096, "b", 64);
    // Without skew, large arrays land on L1-way boundaries (the
    // conflict-prone unmodified-VSDK layout of paper footnote 3)...
    EXPECT_EQ(q1 % (32 * 1024), 0u);
    EXPECT_EQ(q2 % (32 * 1024), 0u);
    // ...while skewing staggers the bases by sub-way offsets.
    EXPECT_NE(s2 % (32 * 1024), s1 % (32 * 1024));
}

TEST(TraceBuilder, ArithmeticValuesAndDeps)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    Val a = tb.imm(5);
    Val b = tb.imm(7);
    Val c = tb.add(a, b);
    EXPECT_EQ(c.data, 12u);
    Val d = tb.mul(c, tb.imm(3));
    EXPECT_EQ(d.data, 36u);
    Val e = tb.sub(d, c);
    EXPECT_EQ(e.data, 24u);
    ASSERT_EQ(sink.insts.size(), 3u);
    // The subtract depends on both earlier results.
    EXPECT_EQ(sink.insts[2].src[0], d.id);
    EXPECT_EQ(sink.insts[2].src[1], c.id);
    // Immediates are free: first inst has no sources.
    EXPECT_EQ(sink.insts[0].numSrcs, 0u);
}

TEST(TraceBuilder, SignedOps)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    Val m = tb.imm(static_cast<u64>(s64{-20}));
    EXPECT_EQ(tb.sra(m, 2).s(), -5);
    EXPECT_EQ(tb.cmpLt(m, tb.imm(0)).data, 1u);
    EXPECT_EQ(tb.cmpLe(tb.imm(3), tb.imm(3)).data, 1u);
    EXPECT_EQ(tb.cmpEq(tb.imm(3), tb.imm(4)).data, 0u);
    EXPECT_EQ(tb.div(tb.imm(static_cast<u64>(s64{-9})), tb.imm(2)).s(),
              -4);
}

TEST(TraceBuilder, FloatOps)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    Val a = tb.fimm(1.5);
    Val b = tb.fimm(2.5);
    EXPECT_DOUBLE_EQ(TraceBuilder::asF(tb.fadd(a, b)), 4.0);
    EXPECT_DOUBLE_EQ(TraceBuilder::asF(tb.fmul(a, b)), 3.75);
    EXPECT_DOUBLE_EQ(TraceBuilder::asF(tb.fdiv(b, a)),
                     2.5 / 1.5);
    EXPECT_EQ(tb.fcvtToInt(tb.fimm(7.9)).s(), 7);
    EXPECT_EQ(sink.insts[0].op, Op::FpAlu);
    EXPECT_EQ(sink.insts[1].op, Op::FpMul);
    EXPECT_EQ(sink.insts[2].op, Op::FpDiv);
}

TEST(TraceBuilder, LoadStoreThroughArena)
{
    RecordingSink sink;
    TraceBuilder tb(sink, true, /*explicit_addressing=*/false);
    const Addr p = tb.alloc(16);
    tb.store(p, 2, tb.imm(0xabcd));
    Val v = tb.load(p, 2);
    EXPECT_EQ(v.data, 0xabcdu);
    Val s = tb.load(p, 2, Val{}, /*sign=*/true);
    EXPECT_EQ(s.s(), static_cast<s16>(0xabcd));
    ASSERT_EQ(sink.insts.size(), 3u);
    EXPECT_TRUE(sink.insts[0].isStore());
    EXPECT_TRUE(sink.insts[1].isLoad());
    EXPECT_EQ(sink.insts[1].addr, p);
    EXPECT_EQ(sink.insts[1].memSize, 2u);
}

TEST(TraceBuilder, ExplicitAddressingAddsOneOpPerAccess)
{
    RecordingSink s1, s2;
    TraceBuilder lean(s1, true, false), fat(s2, true, true);
    const Addr p1 = lean.alloc(8);
    const Addr p2 = fat.alloc(8);
    lean.store(p1, 1, lean.imm(1));
    lean.load(p1, 1);
    fat.store(p2, 1, fat.imm(1));
    fat.load(p2, 1);
    EXPECT_EQ(s1.insts.size(), 2u);
    EXPECT_EQ(s2.insts.size(), 4u);
    EXPECT_EQ(s2.insts[0].op, Op::IntAlu); // the address computation
}

TEST(TraceBuilder, BranchCarriesOutcomeAndPc)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    const u32 pc = tb.makePc("loop");
    Val c = tb.cmpLt(tb.imm(1), tb.imm(2));
    tb.branch(pc, true, c);
    tb.branch(pc, false);
    ASSERT_EQ(sink.insts.size(), 3u);
    EXPECT_TRUE(sink.insts[1].isBranch());
    EXPECT_TRUE(sink.insts[1].taken());
    EXPECT_EQ(sink.insts[1].pc, pc);
    EXPECT_FALSE(sink.insts[2].taken());
}

TEST(TraceBuilder, VisOpsComputeAndClassify)
{
    RecordingSink sink;
    TraceBuilder tb(sink, true, false);
    const Addr p = tb.alloc(16);
    tb.arena().write(p, 8, 0x0807060504030201ull);
    Val v = tb.vload(p);
    EXPECT_EQ(v.data, 0x0807060504030201ull);
    Val e = tb.vfexpand(v);
    EXPECT_EQ(e.data & 0xffff, 0x010u); // byte 1 << 4
    Val sum = tb.vfpadd16(e, e);
    tb.setGsrScale(2);
    Val packed = tb.vfpack16(sum);
    EXPECT_EQ(packed.data & 0xff, 0x01u); // (1<<4 + 1<<4) <<2 >>7 == 1
    Val dist = tb.vpdist(v, tb.imm(0), tb.imm(0));
    EXPECT_EQ(dist.data, 1u + 2 + 3 + 4 + 5 + 6 + 7 + 8);
    EXPECT_EQ(tb.countOf(Op::VisPack), 2u);
    EXPECT_EQ(tb.countOf(Op::VisAdd), 1u);
    EXPECT_EQ(tb.countOf(Op::VisPdist), 1u);
    EXPECT_EQ(tb.countOf(Op::VisGsr), 1u);
}

TEST(TraceBuilder, PartialStoreWritesSelectedLanes)
{
    RecordingSink sink;
    TraceBuilder tb(sink, true, false);
    const Addr p = tb.alloc(8);
    tb.vstore(p, tb.imm(0x1111111111111111ull));
    tb.vstorePartial(p, tb.imm(0x2222222222222222ull), tb.imm(0xf0));
    EXPECT_EQ(tb.arena().read(p, 8), 0x2222222211111111ull);
    EXPECT_TRUE(sink.insts.back().flags & isa::kFlagPartialStore);
}

TEST(TraceBuilder, AlignAddrSetsGsrAlign)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    const Addr a = tb.visAlignAddr(0x10003);
    EXPECT_EQ(a, 0x10000u);
    EXPECT_EQ(tb.gsr().align, 3u);
}

TEST(TraceBuilder, PrefetchEmitsPrefetchOp)
{
    RecordingSink sink;
    TraceBuilder tb(sink, true, false);
    const Addr p = tb.alloc(64);
    tb.prefetch(p);
    ASSERT_EQ(sink.insts.size(), 1u);
    EXPECT_TRUE(sink.insts[0].isPrefetch());
}

TEST(TraceBuilder, FinishForwardsToSink)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    tb.finish();
    EXPECT_TRUE(sink.finished);
}

TEST(TraceBuilder, InstCountTracksEmission)
{
    RecordingSink sink;
    TraceBuilder tb(sink, true, false);
    tb.add(tb.imm(1), tb.imm(2));
    tb.mul(tb.imm(1), tb.imm(2));
    const Addr p = tb.alloc(8);
    tb.load(p, 1);
    EXPECT_EQ(tb.instCount(), 3u);
    EXPECT_EQ(tb.countOf(Op::IntAlu), 1u);
    EXPECT_EQ(tb.countOf(Op::IntMul), 1u);
    EXPECT_EQ(tb.countOf(Op::Load), 1u);
}

TEST(TraceBuilder, Mul16DispatchesOnIsaFeatures)
{
    RecordingSink s1, s2;
    TraceBuilder vis(s1, true, false);
    VisFeatures mmx_features;
    mmx_features.direct16x16Mul = true;
    mmx_features.hasPmaddwd = true;
    TraceBuilder mmx(s2, true, false, mmx_features);

    Val a1 = vis.imm(0x0102030405060708ull);
    Val b1 = vis.imm(0x1112131415161718ull);
    Val r1 = vis.vmul16(a1, b1);
    Val r2 = mmx.vmul16(mmx.imm(a1.data), mmx.imm(b1.data));
    EXPECT_EQ(r1.data, r2.data);     // identical arithmetic...
    EXPECT_EQ(s1.insts.size(), 3u);  // ...3 ops on VIS
    EXPECT_EQ(s2.insts.size(), 1u);  // ...1 op on MMX
    EXPECT_EQ(mmx.vpmaddwd(mmx.imm(1), mmx.imm(2)).id != kNoVal, true);
}

TEST(TraceBuilder, PmaddwdRequiresFeature)
{
    RecordingSink sink;
    TraceBuilder tb(sink); // default VIS features: no pmaddwd
    EXPECT_DEATH(tb.vpmaddwd(tb.imm(1), tb.imm(2)), "");
}

TEST(TraceBuilder, SelectEmitsTwoOps)
{
    RecordingSink sink;
    TraceBuilder tb(sink);
    Val r = tb.select(tb.imm(1), tb.imm(10), tb.imm(20));
    EXPECT_EQ(r.data, 10u);
    Val r2 = tb.select(tb.imm(0), tb.imm(10), tb.imm(20));
    EXPECT_EQ(r2.data, 20u);
    EXPECT_EQ(sink.insts.size(), 4u);
}

} // namespace
} // namespace msim::prog
