/**
 * @file
 * Tests for the differential audit subsystem (src/audit) and the
 * regression pins from the config-fuzz burn-down.
 *
 * The burn-down bugs pinned here are the degenerate-config crashes the
 * fuzzer's config sampler surfaced while it was being written: before
 * this PR, a CacheConfig with assoc == 0 divided by zero computing the
 * set count, ports == 0 indexed an empty port array, numMshrs == 0
 * indexed an empty fill array, and a DramConfig with interleave == 0
 * divided by zero on every access. All are now rejected with fatal()
 * by the constructors (so the fast and reference models reject the
 * same configs), and MinimalResourceConfig pins differential identity
 * at the valid resource floor the sampler now respects. The PPM-header
 * overflow repro from the same burn-down is pinned in test_img.cc
 * (PpmMalformed.DimensionProductOverflows).
 */

#include <string>

#include <gtest/gtest.h>

#include "audit/invariants.hh"
#include "core/registry.hh"
#include "mem/hierarchy.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim
{
namespace
{

// --- InvariantSink / ScopedSink -----------------------------------------

TEST(InvariantSink, RecordsInsteadOfPanicking)
{
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        audit::fail("x == y", "test.cc", 42, "x %d y %d", 1, 2);
    }
    EXPECT_EQ(sink.violations(), 1u);
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records()[0].check, "x == y");
    EXPECT_EQ(sink.records()[0].message, "x 1 y 2");
    EXPECT_EQ(sink.records()[0].line, 42);
}

TEST(InvariantSink, RecordListIsCappedButCountIsExact)
{
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        for (int i = 0; i < 100; ++i)
            audit::fail("c", "t.cc", i, "violation %d", i);
    }
    EXPECT_EQ(sink.violations(), 100u);
    EXPECT_EQ(sink.records().size(), audit::InvariantSink::kMaxRecords);
}

TEST(InvariantSink, ClearResets)
{
    audit::InvariantSink sink;
    {
        audit::ScopedSink guard(sink);
        audit::fail("c", "t.cc", 1, "boom");
    }
    sink.clear();
    EXPECT_EQ(sink.violations(), 0u);
    EXPECT_TRUE(sink.records().empty());
}

TEST(InvariantSink, ScopedSinkRestoresPrevious)
{
    audit::InvariantSink outer;
    audit::InvariantSink inner;
    audit::ScopedSink outer_guard(outer);
    {
        audit::ScopedSink inner_guard(inner);
        audit::fail("c", "t.cc", 1, "inner");
    }
    audit::fail("c", "t.cc", 2, "outer");
    EXPECT_EQ(inner.violations(), 1u);
    EXPECT_EQ(outer.violations(), 1u);
}

TEST(InvariantRegistry, BuiltinInvariantsRegistered)
{
    const auto &table = audit::invariants();
    ASSERT_GE(table.size(), 7u);
    auto has = [&](const std::string &name) {
        for (const auto &inv : table)
            if (name == inv.name)
                return true;
        return false;
    };
    EXPECT_TRUE(has("mshr-conservation"));
    EXPECT_TRUE(has("mshr-combine-bound"));
    EXPECT_TRUE(has("tag-store-consistency"));
    EXPECT_TRUE(has("port-occupancy"));
    EXPECT_TRUE(has("retire-order-monotonicity"));
    EXPECT_TRUE(has("window-occupancy"));
    EXPECT_TRUE(has("accounting-identity"));
}

// --- Accounting identity -------------------------------------------------

TEST(AccountingIdentity, HoldsForExactSum)
{
    cpu::ExecStats s;
    s.cycles = 1000;
    s.busy = 400.0;
    s.fuStall = 100.0;
    s.memL1Hit = 250.0;
    s.memL1Miss = 250.0;
    double err = 1.0;
    EXPECT_TRUE(audit::accountingIdentityHolds(s, &err));
    EXPECT_EQ(err, 0.0);
}

TEST(AccountingIdentity, ToleratesRoundingButNotWholeCycles)
{
    cpu::ExecStats s;
    s.cycles = 1000;
    s.busy = 400.0 + 1e-7; // accumulated double rounding
    s.fuStall = 100.0;
    s.memL1Hit = 250.0;
    s.memL1Miss = 250.0;
    EXPECT_TRUE(audit::accountingIdentityHolds(s));

    s.busy = 401.0; // a misaccounted whole cycle
    double err = 0.0;
    EXPECT_FALSE(audit::accountingIdentityHolds(s, &err));
    EXPECT_NEAR(err, 1.0, 1e-9);
}

TEST(AccountingIdentity, HoldsOnRealRuns)
{
    using core::findBenchmark;
    const core::Benchmark &bench = findBenchmark("addition");
    for (const auto &machine :
         {sim::inOrder1Way(), sim::inOrder4Way(), sim::outOfOrder4Way()}) {
        const sim::RunResult r = sim::runTrace(
            [&](prog::TraceBuilder &tb) {
                bench.generate(tb, prog::Variant::Vis);
            },
            machine);
        double err = 0.0;
        EXPECT_TRUE(audit::accountingIdentityHolds(r.exec, &err))
            << machine.label << ": err " << err;
    }
}

// --- Config-fuzz burn-down regressions -----------------------------------

TEST(AuditFuzzRegression, CacheZeroAssocRejected)
{
    sim::MachineConfig m;
    m.mem.l1.assoc = 0; // used to divide by zero computing numSets
    EXPECT_EXIT(mem::Hierarchy h(m.mem), testing::ExitedWithCode(1),
                "cache: bad config");
}

TEST(AuditFuzzRegression, CacheZeroPortsRejected)
{
    sim::MachineConfig m;
    m.mem.l2.ports = 0; // used to index an empty port array
    EXPECT_EXIT(mem::Hierarchy h(m.mem), testing::ExitedWithCode(1),
                "cache: bad config");
}

TEST(AuditFuzzRegression, CacheZeroMshrsRejected)
{
    sim::MachineConfig m;
    m.mem.l1.numMshrs = 0; // used to index an empty sorted-fill array
    EXPECT_EXIT(mem::Hierarchy h(m.mem), testing::ExitedWithCode(1),
                "cache: bad config");
}

TEST(AuditFuzzRegression, CacheZeroLineBytesRejected)
{
    sim::MachineConfig m;
    m.mem.l1.lineBytes = 0; // used to divide by zero computing numSets
    EXPECT_EXIT(mem::Hierarchy h(m.mem), testing::ExitedWithCode(1),
                "cache: bad config");
}

TEST(AuditFuzzRegression, ReferenceModelRejectsSameConfigs)
{
    sim::MachineConfig m = sim::asReference(sim::outOfOrder4Way());
    m.mem.l1.assoc = 0;
    EXPECT_EXIT(mem::Hierarchy h(m.mem), testing::ExitedWithCode(1),
                "cache: bad config");
}

TEST(AuditFuzzRegression, DramZeroInterleaveRejected)
{
    mem::DramConfig cfg;
    cfg.interleave = 0; // used to divide by zero on every access
    EXPECT_EXIT(mem::Dram d(cfg), testing::ExitedWithCode(1),
                "dram: interleave must be nonzero");
}

/**
 * Run one benchmark variant on @p machine through the fast and
 * reference models (recorded or live) and require exact equality of
 * the headline counters. The audit_fuzz shrinker prints repros
 * against this helper.
 */
void
expectFastMatchesReference(const std::string &benchmark,
                           prog::Variant variant, bool live,
                           const sim::MachineConfig &machine)
{
    SCOPED_TRACE(benchmark);
    const core::Benchmark &bench = core::findBenchmark(benchmark);
    const sim::Generator gen = [&](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };

    sim::RunResult fast, ref;
    if (live) {
        fast = sim::runTrace(gen, machine);
        ref = sim::runTrace(gen, sim::asReference(machine));
    } else {
        const prog::RecordedTrace trace = sim::recordTrace(
            gen, machine.skewArrays, machine.visFeatures);
        fast = sim::replayTrace(trace, machine);
        ref = sim::replayTrace(trace, sim::asReference(machine));
    }

    EXPECT_EQ(ref.exec.cycles, fast.exec.cycles);
    EXPECT_EQ(ref.exec.retired, fast.exec.retired);
    EXPECT_EQ(ref.exec.busy, fast.exec.busy);
    EXPECT_EQ(ref.exec.fuStall, fast.exec.fuStall);
    EXPECT_EQ(ref.exec.memL1Hit, fast.exec.memL1Hit);
    EXPECT_EQ(ref.exec.memL1Miss, fast.exec.memL1Miss);
    EXPECT_EQ(ref.l1.accesses, fast.l1.accesses);
    EXPECT_EQ(ref.l1.hits, fast.l1.hits);
    EXPECT_EQ(ref.l1.misses, fast.l1.misses);
    EXPECT_EQ(ref.l1.writebacks, fast.l1.writebacks);
    EXPECT_EQ(ref.l1.combined, fast.l1.combined);
    EXPECT_EQ(ref.l1.blocked, fast.l1.blocked);
    EXPECT_EQ(ref.l2.accesses, fast.l2.accesses);
    EXPECT_EQ(ref.l2.misses, fast.l2.misses);
    EXPECT_EQ(ref.l2.writebacks, fast.l2.writebacks);
}

TEST(AuditFuzzRegression, MinimalResourceConfig)
{
    // The valid resource floor of the fuzzer's config space: one MSHR
    // with one combine slot, one port per level, a 2-entry memory
    // queue. Every access serializes through the blocking paths
    // (inputBlockedUntil, combine-exhausted retries), the states where
    // the fast path's incremental MSHR tracking diverges first if it
    // ever drifts.
    sim::MachineConfig m;
    m.mem.l1 = {1024, 1, 16, 1, 1, 1, 1};
    m.mem.l2 = {4096, 1, 16, 1, 5, 1, 1};
    m.mem.dram.interleave = 1;
    m.core.memQueueSize = 2;
    m.core.maxSpecBranches = 1;
    m.core.windowSize = 4;
    expectFastMatchesReference("addition", prog::Variant::Vis,
                               /*live=*/false, m);
    expectFastMatchesReference("thresh", prog::Variant::Scalar,
                               /*live=*/true, m);
}

} // namespace
} // namespace msim
