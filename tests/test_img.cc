/** @file Unit tests for the image library. */

#include <sstream>

#include <gtest/gtest.h>

#include "img/image.hh"
#include "img/ppm.hh"
#include "img/synth.hh"

namespace msim::img
{
namespace
{

TEST(Image, ShapeAndAccess)
{
    Image im(8, 4, 3);
    EXPECT_EQ(im.width(), 8u);
    EXPECT_EQ(im.height(), 4u);
    EXPECT_EQ(im.bands(), 3u);
    EXPECT_EQ(im.rowBytes(), 24u);
    EXPECT_EQ(im.sizeBytes(), 96u);
    im.at(7, 3, 2) = 200;
    EXPECT_EQ(im.at(7, 3, 2), 200);
    // Interleaved layout: the sample lives at the expected flat index.
    EXPECT_EQ(im.data()[(3 * 8 + 7) * 3 + 2], 200);
}

TEST(Image, PsnrIdenticalIs99)
{
    Image a = makeTestImage(16, 16, 3, 1);
    EXPECT_DOUBLE_EQ(psnr(a, a), 99.0);
}

TEST(Image, PsnrDropsWithNoise)
{
    Image a = makeTestImage(32, 32, 1, 2);
    Image b = a;
    for (size_t i = 0; i < b.sizeBytes(); i += 7)
        b.data()[i] = static_cast<u8>(b.data()[i] ^ 0x08);
    const double p = psnr(a, b);
    EXPECT_LT(p, 99.0);
    EXPECT_GT(p, 20.0);
    EXPECT_GT(maxAbsDiff(a, b), 0u);
    EXPECT_GT(meanAbsDiff(a, b), 0.0);
}

TEST(Ppm, RoundtripP6)
{
    const Image a = makeTestImage(20, 12, 3, 3);
    std::stringstream ss;
    writePpm(ss, a);
    const Image b = readPpm(ss);
    EXPECT_EQ(a, b);
}

TEST(Ppm, RoundtripP5)
{
    const Image a = makeTestImage(9, 7, 1, 4);
    std::stringstream ss;
    writePpm(ss, a);
    const Image b = readPpm(ss);
    EXPECT_EQ(a, b);
}

TEST(Ppm, CommentsSkipped)
{
    std::stringstream ss;
    ss << "P5\n# a comment\n2 2\n# another\n255\n";
    ss.write("\x01\x02\x03\x04", 4);
    const Image im = readPpm(ss);
    EXPECT_EQ(im.width(), 2u);
    EXPECT_EQ(im.at(1, 1, 0), 4);
}

// fatal() exits with status 1, so malformed inputs are death tests.

TEST(PpmMalformed, EmptyStream)
{
    std::stringstream ss;
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "end of stream reading magic");
}

TEST(PpmMalformed, BadMagic)
{
    std::stringstream ss("P7\n2 2\n255\n");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "unsupported magic");
}

TEST(PpmMalformed, ZeroWidth)
{
    std::stringstream ss("P5\n0 4\n255\n");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "zero image dimension");
}

TEST(PpmMalformed, ZeroHeight)
{
    std::stringstream ss("P6\n4 0\n255\n");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "zero image dimension");
}

TEST(PpmMalformed, DimensionProductOverflows)
{
    // 65536 * 65536 * 1 wraps to 0 in 32-bit arithmetic; the reader
    // must reject it before sizing the allocation from the wrapped
    // value (the satellite repro pinned per ISSUE 3's acceptance
    // criteria).
    std::stringstream ss("P5\n65536 65536\n255\n");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "image too large");
}

TEST(PpmMalformed, CommentAtEndOfStream)
{
    // A '#' comment that runs to EOF used to fall through to a generic
    // extraction failure; the reader now reports the missing field.
    std::stringstream ss("P5\n2 # truncated here");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "end of stream inside header \\(reading height\\)");
}

TEST(PpmMalformed, HeaderEndsAfterMagic)
{
    std::stringstream ss("P6\n");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "end of stream inside header \\(reading width\\)");
}

TEST(PpmMalformed, NonNumericDimension)
{
    std::stringstream ss("P5\nabc 4\n255\n");
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "malformed header integer \\(reading width\\)");
}

TEST(PpmMalformed, TruncatedPixelData)
{
    std::stringstream ss;
    ss << "P5\n4 4\n255\n";
    ss.write("\x01\x02", 2); // 2 of the 16 payload bytes
    EXPECT_EXIT(readPpm(ss), testing::ExitedWithCode(1),
                "truncated pixel data");
}

TEST(Synth, Deterministic)
{
    const Image a = makeTestImage(40, 30, 3, 7);
    const Image b = makeTestImage(40, 30, 3, 7);
    EXPECT_EQ(a, b);
}

TEST(Synth, SeedsProduceDifferentContent)
{
    const Image a = makeTestImage(40, 30, 3, 7);
    const Image b = makeTestImage(40, 30, 3, 8);
    EXPECT_NE(a, b);
}

TEST(Synth, HasDynamicRange)
{
    const Image a = makeTestImage(64, 64, 1, 9);
    u8 lo = 255, hi = 0;
    for (size_t i = 0; i < a.sizeBytes(); ++i) {
        lo = std::min(lo, a.data()[i]);
        hi = std::max(hi, a.data()[i]);
    }
    EXPECT_LT(lo, 64);  // not washed out
    EXPECT_GT(hi, 192); // reaches bright values (saturation happens)
}

TEST(Synth, VideoTranslatesCoherently)
{
    // With a (1,1) pan, frame f+1 at (x,y) should roughly equal frame f
    // at (x+1,y+1) away from the moving object.
    const auto v = makeTestVideo(64, 48, 2, 1, 1, 11);
    unsigned matches = 0, total = 0;
    for (unsigned y = 8; y < 40; ++y) {
        for (unsigned x = 8; x < 56; ++x) {
            ++total;
            const int a = v[1].at(x, y, 0);
            const int b = v[0].at(x + 1, y + 1, 0);
            if (std::abs(a - b) <= 2)
                ++matches;
        }
    }
    EXPECT_GT(static_cast<double>(matches) / total, 0.7);
}

TEST(Synth, VideoFrameCount)
{
    const auto v = makeTestVideo(32, 32, 5, 0, 0, 1);
    EXPECT_EQ(v.size(), 5u);
    for (const auto &f : v) {
        EXPECT_EQ(f.width(), 32u);
        EXPECT_EQ(f.bands(), 1u);
    }
}

} // namespace
} // namespace msim::img
