/**
 * @file
 * Observability layer: shared JSON writer/parser round trips, metrics
 * registry merging across threads, timeline ring-buffer wraparound,
 * session NDJSON/trace export, and — the property everything else
 * rests on — bit-identity of simulation results with a session active
 * vs. absent, across every paper benchmark and variant.
 *
 * The JSON tests run in every build; the rest compile only when
 * MSIM_OBS is on (the default).
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "cpu/batch_replay_engine.hh"
#include "cpu/core.hh"
#include "kernels/addition.hh"
#include "mem/hierarchy.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/session.hh"
#include "obs/span.hh"
#include "obs/timeline.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace
{

using namespace msim;

std::string
writeToString(const std::function<void(obs::JsonWriter &)> &fn)
{
    std::FILE *f = std::tmpfile();
    EXPECT_NE(f, nullptr);
    {
        obs::JsonWriter w(f);
        fn(w);
    }
    std::fflush(f);
    std::rewind(f);
    std::string out;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

TEST(ObsJson, WriterParserRoundTrip)
{
    const std::string text = writeToString([](obs::JsonWriter &w) {
        w.beginObject();
        w.field("name", "he said \"hi\"\n\t\\");
        w.field("third", 1.0 / 3.0);
        w.field("big", u64{1} << 53);
        w.field("neg", s64{-42});
        w.field("yes", true);
        w.key("arr");
        w.beginArray();
        w.value(1);
        w.value("two");
        w.beginObject();
        w.field("k", 3.5);
        w.endObject();
        w.endArray();
        w.endObject();
    });

    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(text, v, &err)) << err << "\n" << text;
    EXPECT_EQ(v.stringOr("name", ""), "he said \"hi\"\n\t\\");
    EXPECT_EQ(v.numberOr("third", 0), 1.0 / 3.0); // round-trip exact
    EXPECT_EQ(v.numberOr("big", 0), static_cast<double>(u64{1} << 53));
    EXPECT_EQ(v.numberOr("neg", 0), -42.0);
    const obs::json::Value *yes = v.find("yes");
    ASSERT_NE(yes, nullptr);
    EXPECT_TRUE(yes->isBool() && yes->boolean);
    const obs::json::Value *arr = v.find("arr");
    ASSERT_NE(arr, nullptr);
    ASSERT_TRUE(arr->isArray());
    ASSERT_EQ(arr->array.size(), 3u);
    EXPECT_EQ(arr->array[0].number, 1.0);
    EXPECT_EQ(arr->array[1].string, "two");
    EXPECT_EQ(arr->array[2].numberOr("k", 0), 3.5);
}

TEST(ObsJson, NonFiniteDoublesBecomeZero)
{
    const std::string text = writeToString([](obs::JsonWriter &w) {
        w.beginObject();
        w.field("nan", std::nan(""));
        w.field("inf", 1.0 / 0.0);
        w.endObject();
    });
    obs::json::Value v;
    ASSERT_TRUE(obs::json::parse(text, v));
    EXPECT_EQ(v.numberOr("nan", -1), 0.0);
    EXPECT_EQ(v.numberOr("inf", -1), 0.0);
}

TEST(ObsJson, ParserRejectsMalformedInput)
{
    obs::json::Value v;
    EXPECT_FALSE(obs::json::parse("{\"a\": 1,}", v));
    EXPECT_FALSE(obs::json::parse("{\"a\" 1}", v));
    EXPECT_FALSE(obs::json::parse("{} trailing", v));
    EXPECT_FALSE(obs::json::parse("", v));
    EXPECT_FALSE(obs::json::parse("\"unterminated", v));
    std::string err;
    EXPECT_FALSE(obs::json::parse("[1, 2", v, &err));
    EXPECT_FALSE(err.empty());
}

TEST(ObsJson, ParserHandlesEscapes)
{
    obs::json::Value v;
    ASSERT_TRUE(
        obs::json::parse(R"({"s": "aA\n\t\"\\é"})", v));
    EXPECT_EQ(v.stringOr("s", ""), "aA\n\t\"\\\xc3\xa9");
}

#if MSIM_OBS_ENABLED

TEST(ObsMetrics, RegistrationIsIdempotentAndKindChecked)
{
    obs::resetMetricsForTest();
    const obs::MetricId a =
        obs::metricId("test.reg.counter", obs::MetricKind::Counter);
    ASSERT_NE(a, obs::kNoMetric);
    EXPECT_EQ(obs::metricId("test.reg.counter", obs::MetricKind::Counter),
              a);
    // Same name, different kind: refused.
    EXPECT_EQ(obs::metricId("test.reg.counter", obs::MetricKind::Gauge),
              obs::kNoMetric);
    // Updates through kNoMetric are silently dropped.
    obs::count(obs::kNoMetric, 7);
    obs::observe(obs::kNoMetric, 1.0);
}

TEST(ObsMetrics, MultiThreadMergeAndThreadExitRetention)
{
    obs::resetMetricsForTest();
    const obs::MetricId ctr =
        obs::metricId("test.merge.counter", obs::MetricKind::Counter);
    const obs::MetricId dist =
        obs::metricId("test.merge.dist", obs::MetricKind::Dist);
    const obs::MetricId gauge =
        obs::metricId("test.merge.gauge", obs::MetricKind::Gauge);

    constexpr unsigned kThreads = 4, kPer = 1000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t)
        ts.emplace_back([=] {
            for (unsigned i = 0; i < kPer; ++i) {
                obs::count(ctr);
                obs::observe(dist, static_cast<double>(i % 10));
            }
        });
    for (auto &t : ts)
        t.join();
    // Workers have exited: their sheets must have folded into the
    // retained totals. The gauge is set after the joins so the winner
    // is deterministic.
    obs::gaugeSet(gauge, 12.5);

    bool sawCtr = false, sawDist = false, sawGauge = false;
    for (const obs::MetricValue &m : obs::snapshotMetrics()) {
        if (m.name == "test.merge.counter") {
            sawCtr = true;
            EXPECT_EQ(m.count, u64{kThreads} * kPer);
        } else if (m.name == "test.merge.dist") {
            sawDist = true;
            EXPECT_EQ(m.count, u64{kThreads} * kPer);
            EXPECT_EQ(m.min, 0.0);
            EXPECT_EQ(m.max, 9.0);
            EXPECT_EQ(m.sum, kThreads * kPer * 4.5);
        } else if (m.name == "test.merge.gauge") {
            sawGauge = true;
            EXPECT_EQ(m.sum, 12.5);
        }
    }
    EXPECT_TRUE(sawCtr && sawDist && sawGauge);
}

TEST(ObsTimeline, RingBufferWraparound)
{
    obs::TimelineRecorder tl(0, "t", /*period=*/10, /*capacity=*/4);
    EXPECT_EQ(tl.period(), 10u);
    for (u64 i = 0; i < 7; ++i) {
        const Cycle now = 10 * (i + 1);
        EXPECT_EQ(tl.sample(now, /*retired=*/i, 1.0 * i, 0, 0, 0,
                            static_cast<u32>(i), 0),
                  now + 10);
    }
    EXPECT_EQ(tl.totalSamples(), 7u);
    EXPECT_EQ(tl.droppedSamples(), 3u);
    ASSERT_EQ(tl.size(), 4u);
    // Oldest retained row is sample index 3 (cycle 40), newest 6.
    for (size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(tl.row(i).cycle, 10 * (i + 4));
        EXPECT_EQ(tl.row(i).retired, i + 3);
    }
}

TEST(ObsTimeline, NoWraparoundKeepsAllRows)
{
    obs::TimelineRecorder tl(1, "t", 5, 8);
    for (u64 i = 0; i < 3; ++i)
        tl.sample(5 * (i + 1), i, 0, 0, 0, 0, 0, 0);
    EXPECT_EQ(tl.droppedSamples(), 0u);
    ASSERT_EQ(tl.size(), 3u);
    EXPECT_EQ(tl.row(0).cycle, 5u);
    EXPECT_EQ(tl.row(2).cycle, 15u);
}

// ---- timeline rows across event-skip clock jumps ---------------------

/**
 * Replay @p trace sequentially with a directly attached recorder and
 * return the retained rows (capacity sized so nothing drops).
 */
std::vector<obs::TimelineRow>
replayRows(const prog::RecordedTrace &trace, const sim::MachineConfig &m,
           Cycle period, cpu::ExecStats *stats = nullptr)
{
    mem::Hierarchy h(m.mem);
    cpu::PipelineCore core(m.core, h);
    obs::TimelineRecorder tl(0, "rows", period, size_t{1} << 18);
    tl.attachMem(&h.l1().mshrOccupancy(), &h.l2().mshrOccupancy());
    core.setTimeline(&tl);
    core.runRecorded(trace);
    if (stats)
        *stats = core.stats();
    EXPECT_EQ(tl.droppedSamples(), 0u);
    std::vector<obs::TimelineRow> rows;
    rows.reserve(tl.size());
    for (size_t i = 0; i < tl.size(); ++i)
        rows.push_back(tl.row(i));
    return rows;
}

/** Same rows through a single-lane batched replay. */
std::vector<obs::TimelineRow>
batchRows(const prog::RecordedTrace &trace, const sim::MachineConfig &m,
          Cycle period)
{
    mem::Hierarchy h(m.mem);
    const cpu::BatchReplayEngine::Lane lane{&m.core, &h};
    cpu::BatchReplayEngine engine(trace, std::span(&lane, 1));
    obs::TimelineRecorder tl(0, "rows", period, size_t{1} << 18);
    tl.attachMem(&h.l1().mshrOccupancy(), &h.l2().mshrOccupancy());
    engine.setLaneTimeline(0, &tl);
    engine.run();
    EXPECT_EQ(tl.droppedSamples(), 0u);
    std::vector<obs::TimelineRow> rows;
    rows.reserve(tl.size());
    for (size_t i = 0; i < tl.size(); ++i)
        rows.push_back(tl.row(i));
    return rows;
}

void
expectSameRows(const std::vector<obs::TimelineRow> &a,
               const std::vector<obs::TimelineRow> &b,
               const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (size_t i = 0; i < a.size(); ++i) {
        const std::string at = what + " row " + std::to_string(i);
#define MSIM_SAMEROW(field)                                                  \
    EXPECT_EQ(a[i].field, b[i].field) << at << ": " #field
        MSIM_SAMEROW(cycle);
        MSIM_SAMEROW(retired);
        MSIM_SAMEROW(busy);
        MSIM_SAMEROW(fuStall);
        MSIM_SAMEROW(memL1Hit);
        MSIM_SAMEROW(memL1Miss);
        MSIM_SAMEROW(window);
        MSIM_SAMEROW(memq);
        MSIM_SAMEROW(mshrL1);
        MSIM_SAMEROW(mshrL2);
#undef MSIM_SAMEROW
    }
}

/** Miss-heavy recorded workload: long dead spans the skipper can jump. */
prog::RecordedTrace
missHeavyTrace(const sim::MachineConfig &m)
{
    const sim::Generator gen = [](prog::TraceBuilder &tb) {
        kernels::runAddition(tb, prog::Variant::Vis, 512, 64, 2);
    };
    return sim::recordTrace(gen, m.skewArrays, m.visFeatures);
}

/**
 * The satellite property for event skipping: every TimelineRecorder row
 * is identical whether the clock ticked through a sample boundary or
 * jumped across it (the jump is clamped to land exactly on the
 * boundary), sequentially and through the batched lane path, across
 * periods that land boundaries both inside and outside skipped spans.
 */
TEST(ObsEventSkip, RowsIdenticalWhetherClockTicksOrJumps)
{
    const sim::MachineConfig base = sim::withL1Size(1 << 10);
    const sim::MachineConfig off = sim::withEventSkip(base, false);
    const sim::MachineConfig on = sim::withEventSkip(base, true);
    const prog::RecordedTrace trace = missHeavyTrace(base);

    for (const Cycle period : {Cycle{7}, Cycle{64}, Cycle{1024}}) {
        const std::string what =
            "period " + std::to_string(period);
        const auto offRows = replayRows(trace, off, period);
        ASSERT_FALSE(offRows.empty()) << what;
        expectSameRows(offRows, replayRows(trace, on, period),
                       what + " (seq on vs off)");
        expectSameRows(offRows, batchRows(trace, on, period),
                       what + " (batch on vs seq off)");
    }
}

/** Rows land on exact period multiples even when jumps cross them. */
TEST(ObsEventSkip, RowsLandOnExactPeriodBoundaries)
{
    const sim::MachineConfig on =
        sim::withEventSkip(sim::withL1Size(1 << 10), true);
    const prog::RecordedTrace trace = missHeavyTrace(on);
    constexpr Cycle kPeriod = 13; // prime: lands mid-span constantly
    const auto rows = replayRows(trace, on, kPeriod);
    ASSERT_FALSE(rows.empty());
    for (size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].cycle, kPeriod * (i + 1)) << "row " << i;
}

/**
 * Cumulative-column conservation, the property tools/msim_report's
 * per-interval stall summaries difference on: at every sampled cycle
 * the four cumulative stall classes sum to the cycle count exactly
 * (sampling happens before the cycle's own charge), so adjacent-row
 * deltas are non-negative and conserve the interval length even when
 * the interval was crossed by one bulk-charged clock jump.
 */
TEST(ObsEventSkip, CumulativeDeltasConserveCycles)
{
    const sim::MachineConfig on =
        sim::withEventSkip(sim::withL1Size(1 << 10), true);
    const prog::RecordedTrace trace = missHeavyTrace(on);
    const auto rows = replayRows(trace, on, 64);
    ASSERT_GT(rows.size(), 2u);
    double prevSum = 0.0;
    u64 prevCycle = 0, prevRetired = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        const obs::TimelineRow &r = rows[i];
        const double sum =
            r.busy + r.fuStall + r.memL1Hit + r.memL1Miss;
        const double cycles = static_cast<double>(r.cycle);
        EXPECT_NEAR(sum, cycles, 1e-6 * cycles + 1e-6) << "row " << i;
        EXPECT_GE(r.cycle, prevCycle) << "row " << i;
        EXPECT_GE(r.retired, prevRetired) << "row " << i;
        EXPECT_GE(r.busy + 1e-9, 0.0);
        EXPECT_GE(sum + 1e-9, prevSum) << "row " << i;
        prevSum = sum;
        prevCycle = r.cycle;
        prevRetired = r.retired;
    }
}

/**
 * finish() must flush the final partial sampling interval: without the
 * flush, a run whose length is not a multiple of the period loses its
 * tail and the cumulative columns stop short of the run totals.
 */
TEST(ObsEventSkip, FinishFlushesFinalPartialInterval)
{
    obs::TimelineRecorder tl(0, "t", /*period=*/10, /*capacity=*/64);
    tl.sample(10, 4, 6.0, 2.0, 1.0, 1.0, 0, 0);
    tl.sample(20, 9, 13.0, 4.0, 2.0, 1.0, 0, 0);

    obs::RunSummary s;
    s.cycles = 25; // 5 cycles past the last sampled boundary
    s.instructions = 12;
    s.busy = 16.0;
    s.fuStall = 5.0;
    s.memL1Hit = 2.5;
    s.memL1Miss = 1.5;
    tl.finish(s);

    ASSERT_EQ(tl.size(), 3u);
    const obs::TimelineRow last = tl.row(2);
    EXPECT_EQ(last.cycle, 25u);
    EXPECT_EQ(last.retired, 12u);
    EXPECT_DOUBLE_EQ(last.busy, 16.0);
    EXPECT_DOUBLE_EQ(last.fuStall, 5.0);
    EXPECT_DOUBLE_EQ(last.memL1Hit, 2.5);
    EXPECT_DOUBLE_EQ(last.memL1Miss, 1.5);

    // finish() is idempotent: a second call must not append another
    // flush row (last summary still wins).
    tl.finish(s);
    EXPECT_EQ(tl.size(), 3u);
}

/** A run ending exactly on a sample boundary needs no flush row. */
TEST(ObsEventSkip, FinishOnExactBoundaryAddsNoRow)
{
    obs::TimelineRecorder tl(0, "t", 10, 64);
    tl.sample(10, 4, 6.0, 2.0, 1.0, 1.0, 0, 0);
    tl.sample(20, 9, 13.0, 4.0, 2.0, 1.0, 0, 0);
    obs::RunSummary s;
    s.cycles = 20;
    s.instructions = 9;
    tl.finish(s);
    EXPECT_EQ(tl.size(), 2u);
}

/**
 * End-to-end conservation including the tail: after a replay whose
 * cycle count is not a period multiple, the finished timeline's last
 * row carries the run totals and the cumulative columns still
 * partition the cycle count exactly.
 */
TEST(ObsEventSkip, CumulativeDeltasConserveCyclesThroughFinish)
{
    const sim::MachineConfig on =
        sim::withEventSkip(sim::withL1Size(1 << 10), true);
    const prog::RecordedTrace trace = missHeavyTrace(on);

    mem::Hierarchy h(on.mem);
    cpu::PipelineCore core(on.core, h);
    obs::TimelineRecorder tl(0, "tail", /*period=*/64, size_t{1} << 18);
    tl.attachMem(&h.l1().mshrOccupancy(), &h.l2().mshrOccupancy());
    core.setTimeline(&tl);
    core.runRecorded(trace);
    const cpu::ExecStats st = core.stats();
    ASSERT_NE(st.cycles % 64, 0u) << "pick a period that leaves a tail";

    obs::RunSummary s;
    s.cycles = st.cycles;
    s.instructions = st.retired;
    s.busy = st.busy;
    s.fuStall = st.fuStall;
    s.memL1Hit = st.memL1Hit;
    s.memL1Miss = st.memL1Miss;
    tl.finish(s);

    ASSERT_GT(tl.size(), 2u);
    const obs::TimelineRow last = tl.row(tl.size() - 1);
    EXPECT_EQ(last.cycle, st.cycles);
    EXPECT_EQ(last.retired, st.retired);
    const double lastSum =
        last.busy + last.fuStall + last.memL1Hit + last.memL1Miss;
    EXPECT_NEAR(lastSum, static_cast<double>(st.cycles),
                1e-6 * static_cast<double>(st.cycles) + 1e-6);

    // The flush row extends the monotone cumulative sequence.
    const obs::TimelineRow prev = tl.row(tl.size() - 2);
    EXPECT_GT(last.cycle, prev.cycle);
    EXPECT_GE(last.retired, prev.retired);
    EXPECT_GE(last.busy, prev.busy);
}

/** An attached recorder must not perturb results while skipping. */
TEST(ObsEventSkip, TimelineDoesNotPerturbResults)
{
    const sim::MachineConfig on =
        sim::withEventSkip(sim::withL1Size(1 << 10), true);
    const prog::RecordedTrace trace = missHeavyTrace(on);

    mem::Hierarchy h(on.mem);
    cpu::PipelineCore core(on.core, h);
    core.runRecorded(trace);
    const cpu::ExecStats plain = core.stats();

    cpu::ExecStats observed;
    replayRows(trace, on, 13, &observed);
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_EQ(plain.retired, observed.retired);
    EXPECT_EQ(plain.busy, observed.busy);
    EXPECT_EQ(plain.fuStall, observed.fuStall);
    EXPECT_EQ(plain.memL1Hit, observed.memL1Hit);
    EXPECT_EQ(plain.memL1Miss, observed.memL1Miss);
    EXPECT_EQ(plain.mispredicts, observed.mispredicts);
}

// ---- per-site attribution conservation -------------------------------

/** Resolved retire width: the engines treat 0 as "same as issue". */
unsigned
resolvedWidth(const cpu::CoreConfig &core)
{
    return core.retireWidth ? core.retireWidth : core.issueWidth;
}

struct AttributedRun
{
    obs::SiteAttribution sa;
    cpu::ExecStats stats;
};

/** Sequential replay with a SiteAttribution attached to the core. */
AttributedRun
seqAttribution(const prog::RecordedTrace &trace, const sim::MachineConfig &m)
{
    AttributedRun r;
    mem::Hierarchy h(m.mem);
    cpu::PipelineCore core(m.core, h);
    r.sa.reset(trace.siteNames().size(), resolvedWidth(m.core));
    core.setSiteAttribution(&r.sa);
    core.runRecorded(trace);
    r.stats = core.stats();
    return r;
}

/** Same run through a single-lane batched replay. */
AttributedRun
batchAttribution(const prog::RecordedTrace &trace,
                 const sim::MachineConfig &m)
{
    AttributedRun r;
    mem::Hierarchy h(m.mem);
    const cpu::BatchReplayEngine::Lane lane{&m.core, &h};
    cpu::BatchReplayEngine engine(trace, std::span(&lane, 1));
    r.sa.reset(trace.siteNames().size(), resolvedWidth(m.core));
    engine.setLaneSiteAttribution(0, &r.sa);
    engine.run();
    r.stats = engine.takeStats(0);
    return r;
}

/**
 * The exactness contract from obs/site.hh: per-site sums reconstruct
 * the engine's own ExecStats identically — retired counts as integers,
 * stall classes as integral ticks of 1/retireWidth cycle, so the
 * double comparisons are exact (dyadic rationals, power-of-two width).
 */
void
expectConserved(const obs::SiteAttribution &sa, const cpu::ExecStats &st,
                const std::string &what)
{
    SCOPED_TRACE(what);
    const double width = static_cast<double>(sa.retireWidth());
    u64 retired = 0, total = 0;
    u64 cls[obs::SiteAttribution::kNumClasses] = {};
    for (size_t s = 0; s < sa.numSites(); ++s) {
        retired += sa.row(s).retired;
        for (unsigned c = 0; c < obs::SiteAttribution::kNumClasses; ++c) {
            cls[c] += sa.row(s).ticks[c];
            total += sa.row(s).ticks[c];
        }
    }
    EXPECT_EQ(retired, st.retired);
    EXPECT_EQ(total, st.cycles * sa.retireWidth());
    EXPECT_EQ(static_cast<double>(cls[0]) / width, st.busy);
    EXPECT_EQ(static_cast<double>(cls[1]) / width, st.fuStall);
    EXPECT_EQ(static_cast<double>(cls[2]) / width, st.memL1Hit);
    EXPECT_EQ(static_cast<double>(cls[3]) / width, st.memL1Miss);
}

void
expectSameAttribution(const obs::SiteAttribution &a,
                      const obs::SiteAttribution &b,
                      const std::string &what)
{
    ASSERT_EQ(a.numSites(), b.numSites()) << what;
    for (size_t s = 0; s < a.numSites(); ++s) {
        EXPECT_EQ(a.row(s).retired, b.row(s).retired)
            << what << ": site " << s;
        for (unsigned c = 0; c < obs::SiteAttribution::kNumClasses; ++c)
            EXPECT_EQ(a.row(s).ticks[c], b.row(s).ticks[c])
                << what << ": site " << s << " class " << c;
    }
}

/**
 * The profiler's load-bearing property: for every paper benchmark and
 * variant, on both the sequential and the single-lane batched path,
 * with event skipping off and on, the per-site attribution sums
 * reconstruct the run's ExecStats exactly — and all four paths agree
 * site-for-site, tick-for-tick (a skipped span charges its whole
 * length at the frozen window head, which is precisely what per-cycle
 * charging would have done).
 */
TEST(ObsSiteAttribution, ConservesRunTotalsAcrossAllBenchmarks)
{
    const sim::MachineConfig base = sim::outOfOrder4Way();
    const sim::MachineConfig off = sim::withEventSkip(base, false);
    const sim::MachineConfig on = sim::withEventSkip(base, true);

    for (const core::Benchmark *b : core::paperBenchmarks()) {
        const unsigned nvar = b->hasPrefetchVariant ? 3 : 2;
        for (unsigned v = 0; v < nvar; ++v) {
            const auto variant = static_cast<prog::Variant>(v);
            const std::string what =
                b->name + "/" + prog::variantName(variant);
            const prog::RecordedTrace trace = sim::recordTrace(
                [&](prog::TraceBuilder &tb) { b->generate(tb, variant); },
                base.skewArrays, base.visFeatures);
            ASSERT_GT(trace.siteNames().size(), 1u) << what;

            const AttributedRun seqOff = seqAttribution(trace, off);
            expectConserved(seqOff.sa, seqOff.stats, what + " seq/skip-off");
            const AttributedRun seqOn = seqAttribution(trace, on);
            expectConserved(seqOn.sa, seqOn.stats, what + " seq/skip-on");
            const AttributedRun batOff = batchAttribution(trace, off);
            expectConserved(batOff.sa, batOff.stats,
                            what + " batch/skip-off");
            const AttributedRun batOn = batchAttribution(trace, on);
            expectConserved(batOn.sa, batOn.stats, what + " batch/skip-on");

            expectSameAttribution(seqOff.sa, seqOn.sa,
                                  what + " (seq skip on vs off)");
            expectSameAttribution(seqOff.sa, batOff.sa,
                                  what + " (batch vs seq, skip off)");
            expectSameAttribution(seqOff.sa, batOn.sa,
                                  what + " (batch vs seq, skip on)");
        }
    }
}

/**
 * Same property under heavy event skipping: a tiny L1 makes the
 * skipper jump long miss spans constantly (the regime where one bulk
 * span charge stands in for thousands of per-cycle charges).
 */
TEST(ObsSiteAttribution, ConservesThroughLongSkippedSpans)
{
    const sim::MachineConfig small = sim::withL1Size(1 << 10);
    const sim::MachineConfig off = sim::withEventSkip(small, false);
    const sim::MachineConfig on = sim::withEventSkip(small, true);
    const prog::RecordedTrace trace = missHeavyTrace(small);

    const AttributedRun seqOff = seqAttribution(trace, off);
    const AttributedRun seqOn = seqAttribution(trace, on);
    expectConserved(seqOff.sa, seqOff.stats, "small-L1 seq/skip-off");
    expectConserved(seqOn.sa, seqOn.stats, "small-L1 seq/skip-on");
    expectSameAttribution(seqOff.sa, seqOn.sa,
                          "small-L1 (seq skip on vs off)");

    const AttributedRun batOn = batchAttribution(trace, on);
    expectConserved(batOn.sa, batOn.stats, "small-L1 batch/skip-on");
    expectSameAttribution(seqOff.sa, batOn.sa,
                          "small-L1 (batch vs seq)");
}

// ---- session export and bit identity --------------------------------

void
expectSameResult(const sim::RunResult &a, const sim::RunResult &b,
                 const std::string &what)
{
#define MSIM_SAME(field) EXPECT_EQ(a.field, b.field) << what << ": " #field
    MSIM_SAME(exec.cycles);
    MSIM_SAME(exec.retired);
    MSIM_SAME(exec.busy);
    MSIM_SAME(exec.fuStall);
    MSIM_SAME(exec.memL1Hit);
    MSIM_SAME(exec.memL1Miss);
    MSIM_SAME(exec.mixFu);
    MSIM_SAME(exec.mixBranch);
    MSIM_SAME(exec.mixMemory);
    MSIM_SAME(exec.mixVis);
    MSIM_SAME(exec.branches);
    MSIM_SAME(exec.mispredicts);
    MSIM_SAME(exec.loadsL1);
    MSIM_SAME(exec.loadsL2);
    MSIM_SAME(exec.loadsMem);
    MSIM_SAME(exec.prefetchesIssued);
    MSIM_SAME(exec.prefetchesDropped);
    MSIM_SAME(l1.accesses);
    MSIM_SAME(l1.hits);
    MSIM_SAME(l1.misses);
    MSIM_SAME(l1.writebacks);
    MSIM_SAME(l1.missRate);
    MSIM_SAME(l1.mshrMeanOccupancy);
    MSIM_SAME(l1.mshrPeakOccupancy);
    MSIM_SAME(l1.mshrFracAtLeast2);
    MSIM_SAME(l1.mshrFracAtLeast5);
    MSIM_SAME(l1.loadOverlapMean);
    MSIM_SAME(l2.accesses);
    MSIM_SAME(l2.hits);
    MSIM_SAME(l2.misses);
    MSIM_SAME(l2.writebacks);
    MSIM_SAME(l2.missRate);
    MSIM_SAME(l2.mshrMeanOccupancy);
    MSIM_SAME(l2.mshrPeakOccupancy);
    MSIM_SAME(l2.mshrFracAtLeast2);
    MSIM_SAME(l2.mshrFracAtLeast5);
    MSIM_SAME(l2.loadOverlapMean);
    MSIM_SAME(tbInstrs);
    MSIM_SAME(visOps);
    MSIM_SAME(visOverheadOps);
#undef MSIM_SAME
}

/**
 * The load-bearing property: an active session (with an aggressive
 * 64-cycle sample period to maximize hook traffic) must not change a
 * single counter or double in any run, across every paper benchmark
 * and variant, on both the replay and live paths.
 */
TEST(ObsBitIdentity, SessionDoesNotPerturbAnyBenchmark)
{
    obs::Session::finish(); // in case an earlier test leaked one
    const sim::MachineConfig machine = sim::outOfOrder4Way();

    struct Case
    {
        const core::Benchmark *bench;
        prog::Variant variant;
        sim::RunResult replayOff, liveOff;
    };
    std::vector<Case> cases;
    for (const core::Benchmark *b : core::paperBenchmarks()) {
        const unsigned nvar = b->hasPrefetchVariant ? 3 : 2;
        for (unsigned v = 0; v < nvar; ++v)
            cases.push_back({b, static_cast<prog::Variant>(v), {}, {}});
    }

    // The six image kernels also run the live path; codecs would make
    // the doubled live pass too slow for tier 1.
    const auto liveCase = [](const Case &c) {
        return c.bench->name.find("jpeg") == std::string::npos &&
               c.bench->name.find("peg2") == std::string::npos;
    };

    for (Case &c : cases) {
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        const prog::RecordedTrace trace = sim::recordTrace(
            gen, machine.skewArrays, machine.visFeatures);
        c.replayOff = sim::replayTrace(trace, machine);
        if (liveCase(c))
            c.liveOff = sim::runTrace(gen, machine);
    }

    obs::SessionConfig cfg;
    cfg.outBase = testing::TempDir() + "obs_bit_identity";
    cfg.samplePeriod = 64;
    cfg.timelineCapacity = 128; // small: wraparound happens constantly
    ASSERT_TRUE(obs::Session::start(cfg));

    for (const Case &c : cases) {
        const std::string what =
            c.bench->name + "/" + prog::variantName(c.variant);
        const sim::Generator gen = [&](prog::TraceBuilder &tb) {
            c.bench->generate(tb, c.variant);
        };
        const prog::RecordedTrace trace = sim::recordTrace(
            gen, machine.skewArrays, machine.visFeatures);
        expectSameResult(c.replayOff, sim::replayTrace(trace, machine),
                         what + " (replay)");
        if (liveCase(c))
            expectSameResult(c.liveOff, sim::runTrace(gen, machine),
                             what + " (live)");
    }
    obs::Session::finish();
}

TEST(ObsSession, ExportsParseableNdjsonAndTrace)
{
    obs::Session::finish();
    const std::string base = testing::TempDir() + "obs_export";
    obs::SessionConfig cfg;
    cfg.outBase = base;
    cfg.samplePeriod = 128;
    ASSERT_TRUE(obs::Session::start(cfg));
    EXPECT_FALSE(obs::Session::start(cfg)) << "double start must fail";

    {
        MSIM_OBS_SPAN(span, "test.span", "detail text");
        core::runBenchmark("addition", prog::Variant::Vis,
                           sim::outOfOrder4Way());
    }
    obs::Session::finish();
    obs::Session::finish(); // idempotent

    // Every NDJSON line parses; the first is the meta record with the
    // current schema version; a run record carries our label.
    std::ifstream nd(base + ".ndjson");
    ASSERT_TRUE(nd.is_open());
    std::string line;
    size_t lineno = 0;
    bool sawRun = false, sawSample = false, sawSpan = false,
         sawMetric = false;
    while (std::getline(nd, line)) {
        ++lineno;
        obs::json::Value v;
        std::string err;
        ASSERT_TRUE(obs::json::parse(line, v, &err))
            << "line " << lineno << ": " << err;
        const std::string type = v.stringOr("type", "");
        if (lineno == 1) {
            EXPECT_EQ(type, "meta");
            EXPECT_EQ(v.numberOr("schema_version", 0),
                      obs::kSchemaVersion);
        }
        if (type == "run") {
            sawRun = true;
            EXPECT_EQ(v.stringOr("label", ""), "addition/VIS@4-way ooo");
            EXPECT_GT(v.numberOr("cycles", 0), 0.0);
            const double cycles = v.numberOr("cycles", 0);
            const double accounted =
                v.numberOr("busy", 0) + v.numberOr("fu_stall", 0) +
                v.numberOr("mem_l1_hit", 0) + v.numberOr("mem_l1_miss", 0);
            EXPECT_NEAR(accounted, cycles, 1e-6 * cycles);
        }
        sawSample = sawSample || type == "sample";
        if (type == "span" && v.stringOr("name", "") == "test.span") {
            sawSpan = true;
            EXPECT_EQ(v.stringOr("detail", ""), "detail text");
        }
        if (type == "metric" && v.stringOr("name", "") == "sim.cycles") {
            sawMetric = true;
            EXPECT_EQ(v.stringOr("kind", ""), "counter");
            EXPECT_GT(v.numberOr("count", 0), 0.0);
        }
    }
    EXPECT_TRUE(sawRun);
    EXPECT_TRUE(sawSample);
    EXPECT_TRUE(sawSpan);
    EXPECT_TRUE(sawMetric);

    // The trace file is one JSON document with a traceEvents array
    // containing our span and at least one counter event.
    std::ifstream tr(base + ".trace.json");
    ASSERT_TRUE(tr.is_open());
    std::stringstream ss;
    ss << tr.rdbuf();
    obs::json::Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(ss.str(), v, &err)) << err;
    const obs::json::Value *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    bool sawX = false, sawC = false;
    for (const obs::json::Value &e : events->array) {
        const std::string ph = e.stringOr("ph", "");
        sawX = sawX || (ph == "X" && e.stringOr("name", "") == "test.span");
        sawC = sawC || ph == "C";
    }
    EXPECT_TRUE(sawX);
    EXPECT_TRUE(sawC);
}

#endif // MSIM_OBS_ENABLED

} // namespace
