/** @file Unit tests for the common utility layer. */

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "common/saturate.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"

namespace msim
{
namespace
{

TEST(Bits, ByteLaneRoundtrip)
{
    u64 v = 0;
    for (unsigned i = 0; i < 8; ++i)
        v = setByteLane(v, i, static_cast<u8>(0x10 + i));
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(byteLane(v, i), 0x10 + i);
}

TEST(Bits, HalfLaneRoundtrip)
{
    u64 v = 0;
    for (unsigned i = 0; i < 4; ++i)
        v = setHalfLane(v, i, static_cast<u16>(0x1000 + i));
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(halfLane(v, i), 0x1000 + i);
}

TEST(Bits, WordLaneRoundtrip)
{
    u64 v = setWordLane(setWordLane(0, 0, 0xdeadbeef), 1, 0xcafef00d);
    EXPECT_EQ(wordLane(v, 0), 0xdeadbeefu);
    EXPECT_EQ(wordLane(v, 1), 0xcafef00du);
}

TEST(Bits, LanesAreIndependent)
{
    u64 v = ~u64{0};
    v = setHalfLane(v, 2, 0);
    EXPECT_EQ(halfLane(v, 1), 0xffff);
    EXPECT_EQ(halfLane(v, 2), 0);
    EXPECT_EQ(halfLane(v, 3), 0xffff);
}

TEST(Bits, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0x1234, 16), 0x1234);
}

TEST(Bits, Pow2Helpers)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(64));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(24));
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
}

TEST(Saturate, SatU8)
{
    EXPECT_EQ(satU8(-5), 0);
    EXPECT_EQ(satU8(0), 0);
    EXPECT_EQ(satU8(128), 128);
    EXPECT_EQ(satU8(255), 255);
    EXPECT_EQ(satU8(300), 255);
}

TEST(Saturate, SatS16)
{
    EXPECT_EQ(satS16(-40000), -32768);
    EXPECT_EQ(satS16(40000), 32767);
    EXPECT_EQ(satS16(-3), -3);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.nextBelow(17), 17u);
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Stats, DistributionBasics)
{
    Distribution d(8);
    d.sample(1);
    d.sample(3);
    d.sample(3);
    d.sample(100); // clamps into the last bucket
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.maxSeen(), 100u);
    EXPECT_DOUBLE_EQ(d.mean(), (1 + 3 + 3 + 100) / 4.0);
    EXPECT_DOUBLE_EQ(d.fracAtLeast(3), 0.75);
    // Values past the last bucket clamp into it.
    EXPECT_DOUBLE_EQ(d.fracAtLeast(8), 0.25);
}

TEST(Stats, OccupancyTimeWeighted)
{
    OccupancyTracker t(4);
    t.advance(10, 0); // [0,10) at occupancy 0
    t.advance(20, 2); // [10,20) at occupancy 2
    t.advance(40, 4); // [20,40) at occupancy 4
    EXPECT_DOUBLE_EQ(t.meanOccupancy(), (10 * 0 + 10 * 2 + 20 * 4) / 40.0);
    EXPECT_EQ(t.peakOccupancy(), 4u);
    EXPECT_DOUBLE_EQ(t.fracAtLeast(2), 30.0 / 40.0);
    EXPECT_DOUBLE_EQ(t.fracAtLeast(4), 20.0 / 40.0);
}

TEST(Stats, DistributionFracAtLeastBoundaries)
{
    Distribution d(4); // buckets 0..4, values >= 4 saturate into [4]
    d.sample(0);
    d.sample(2);
    d.sample(4);
    d.sample(9); // saturates into the top bucket
    EXPECT_DOUBLE_EQ(d.fracAtLeast(0), 1.0);
    EXPECT_DOUBLE_EQ(d.fracAtLeast(4), 0.5);
    // Queries beyond the last bucket clamp to it: the top bucket means
    // "at least maxBucket", so the saturated fraction is reported
    // rather than 0.
    EXPECT_DOUBLE_EQ(d.fracAtLeast(5), 0.5);
    EXPECT_DOUBLE_EQ(d.fracAtLeast(1000), 0.5);
}

TEST(Stats, DistributionFracAtLeastEmpty)
{
    const Distribution d(4);
    EXPECT_DOUBLE_EQ(d.fracAtLeast(0), 0.0);
    EXPECT_DOUBLE_EQ(d.fracAtLeast(100), 0.0);
}

TEST(Stats, OccupancyFracAtLeastBoundaries)
{
    OccupancyTracker t(2); // histogram buckets 0..2
    t.advance(10, 0); // [0,10) empty
    t.advance(20, 2); // [10,20) full
    EXPECT_DOUBLE_EQ(t.fracAtLeast(2), 0.5);
    // Beyond-capacity queries clamp to the top (saturated) bucket.
    EXPECT_DOUBLE_EQ(t.fracAtLeast(3), 0.5);
    EXPECT_DOUBLE_EQ(t.fracAtLeast(100), 0.5);
    // An untouched tracker divides by zero elapsed time nowhere.
    const OccupancyTracker empty(2);
    EXPECT_DOUBLE_EQ(empty.fracAtLeast(0), 0.0);
    EXPECT_DOUBLE_EQ(empty.fracAtLeast(5), 0.0);
}

TEST(Stats, OccupancyZeroElapsedAdvance)
{
    OccupancyTracker t(4);
    // Time has not moved: no weight is accumulated, but peak and the
    // instantaneous occupancy still update.
    t.advance(0, 3);
    EXPECT_DOUBLE_EQ(t.meanOccupancy(), 0.0);
    EXPECT_EQ(t.peakOccupancy(), 3u);
    EXPECT_EQ(t.lastOccupancy(), 3u);
    EXPECT_DOUBLE_EQ(t.fracAtLeast(0), 0.0); // zero elapsed, no division
    t.advance(5, 1); // [0,5) at occupancy 1
    t.advance(5, 4); // same-cycle re-advance: weightless again
    EXPECT_DOUBLE_EQ(t.meanOccupancy(), 1.0);
    EXPECT_EQ(t.peakOccupancy(), 4u);
    EXPECT_EQ(t.lastOccupancy(), 4u);
}

TEST(Stats, OccupancySaturatedTopBucket)
{
    OccupancyTracker t(2); // histogram buckets 0..2
    t.advance(10, 5);      // occupancy above capacity saturates into [2]
    t.advance(20, 1);
    EXPECT_EQ(t.peakOccupancy(), 5u); // peak keeps the true level
    EXPECT_DOUBLE_EQ(t.fracAtLeast(2), 0.5);
    EXPECT_DOUBLE_EQ(t.fracAtLeast(5), 0.5); // clamps to the top bucket
    EXPECT_DOUBLE_EQ(t.meanOccupancy(), (10 * 5 + 10 * 1) / 20.0);
}

TEST(Stats, OccupancyOutOfOrderAdvance)
{
    OccupancyTracker t(4);
    t.advance(30, 2);
    // A stale timestamp must not go backwards: no elapsed time or
    // weight is added, but peak/lastOccupancy still track the sample.
    t.advance(10, 4);
    EXPECT_DOUBLE_EQ(t.meanOccupancy(), 2.0);
    EXPECT_EQ(t.peakOccupancy(), 4u);
    EXPECT_EQ(t.lastOccupancy(), 4u);
    // Time resumes from the furthest point seen.
    t.advance(60, 0);
    EXPECT_DOUBLE_EQ(t.meanOccupancy(), (30 * 2 + 30 * 0) / 60.0);
}

TEST(Stats, OccupancyLastOccupancyTracksEveryAdvance)
{
    OccupancyTracker t(8);
    EXPECT_EQ(t.lastOccupancy(), 0u);
    t.advance(5, 7);
    EXPECT_EQ(t.lastOccupancy(), 7u);
    t.advance(9, 0);
    EXPECT_EQ(t.lastOccupancy(), 0u);
}

TEST(ThreadPool, ParallelForZeroCount)
{
    std::atomic<unsigned> calls{0};
    globalPool().parallelFor(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPool, ParallelForSingleIndex)
{
    std::atomic<unsigned> calls{0};
    std::atomic<size_t> seen{~size_t{0}};
    globalPool().parallelFor(1, [&](size_t i) {
        ++calls;
        seen = i;
    });
    EXPECT_EQ(calls.load(), 1u);
    EXPECT_EQ(seen.load(), 0u);
}

TEST(ThreadPool, CallerInlineShareExceptionPropagates)
{
    // The caller participates in draining the index space, so the
    // throwing index may execute on the calling thread itself; the
    // exception must still surface from parallelFor, not unwind
    // through the harness.
    EXPECT_THROW(
        globalPool().parallelFor(
            8,
            [](size_t i) {
                if (i == 0) // index 0: claimed by the caller first
                    throw std::runtime_error("inline share");
            }),
        std::runtime_error);
}

TEST(ThreadPool, ExceptionAbandonsRemainingIndices)
{
    std::atomic<unsigned> ran{0};
    try {
        globalPool().parallelFor(1000, [&](size_t i) {
            if (i == 0)
                throw std::logic_error("stop");
            ++ran;
        });
        FAIL() << "exception did not propagate";
    } catch (const std::logic_error &) {
    }
    // Tasks already claimed may finish, but the batch stops early.
    EXPECT_LT(ran.load(), 1000u);
}

TEST(ThreadPool, ReentrantParallelForRunsInline)
{
    // parallelFor from inside a task must not deadlock the pool; the
    // nested call degrades to inline execution on the worker.
    std::atomic<unsigned> inner{0};
    globalPool().parallelFor(4, [&](size_t) {
        globalPool().parallelFor(4, [&](size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 16u);
}

TEST(ThreadPool, ReentrantExceptionPropagatesToOuterCaller)
{
    EXPECT_THROW(globalPool().parallelFor(2,
                                          [&](size_t) {
                                              globalPool().parallelFor(
                                                  2, [&](size_t) {
                                                      throw std::
                                                          runtime_error(
                                                              "nested");
                                                  });
                                          }),
                 std::runtime_error);
}

TEST(Table, RendersAlignedRows)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_EQ(Table::num(1.234, 2), "1.23");
}

} // namespace
} // namespace msim
