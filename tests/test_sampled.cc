/**
 * @file
 * Statistical sampled replay (sim/sampled.hh): plan construction
 * invariants, estimator determinism (across runs, host-SIMD dispatch
 * levels, and event-skip settings), the exact-fallback contract, and
 * accuracy sanity against full replay.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "kernels/addition.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"
#include "sim/sampled.hh"

namespace msim::sim
{
namespace
{

using prog::Variant;

prog::RecordedTrace
traceFor(const std::string &name, Variant variant)
{
    const core::Benchmark &b = core::findBenchmark(name);
    const MachineConfig m = outOfOrder4Way();
    return recordTrace(
        [&](prog::TraceBuilder &tb) { b.generate(tb, variant); },
        m.skewArrays, m.visFeatures);
}

/** A trace small enough that tests stay fast but sampling is real. */
prog::RecordedTrace
smallTrace()
{
    const MachineConfig m = outOfOrder4Way();
    return recordTrace(
        [](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, Variant::Vis, 512, 64, 3);
        },
        m.skewArrays, m.visFeatures);
}

/** Every estimate field exactly equal — doubles compared with ==. */
void
expectIdenticalEstimates(const SampledResult &a, const SampledResult &b,
                         const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.exact, b.exact);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.measuredInstructions, b.measuredInstructions);
    EXPECT_EQ(a.measuredChunks, b.measuredChunks);
#define MSIM_SAME(field)                                                     \
    do {                                                                     \
        EXPECT_EQ(a.field.mean, b.field.mean) << #field;                     \
        EXPECT_EQ(a.field.ci95, b.field.ci95) << #field;                     \
    } while (0)
    MSIM_SAME(cpi);
    MSIM_SAME(cycles);
    MSIM_SAME(fracBusy);
    MSIM_SAME(fracFuStall);
    MSIM_SAME(fracMemL1Hit);
    MSIM_SAME(fracMemL1Miss);
    MSIM_SAME(mispredictRate);
    MSIM_SAME(loadL1MissRate);
#undef MSIM_SAME
}

TEST(SampledPlan, ChunksAreStratifiedOrderedAndFull)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledParams p{/*chunk=*/500, /*interval=*/4,
                          /*warmup=*/1024};
    const SampledPlan plan = prepareSampled(trace, p);
    ASSERT_FALSE(plan.exactFallback());

    const u64 fullChunks = trace.instCount() / p.chunkInstructions;
    const u64 strata =
        (fullChunks + p.intervalChunks - 1) / p.intervalChunks;
    EXPECT_EQ(plan.chunks().size(), strata);

    u64 prevEnd = 0, prevMemBegin = 0;
    for (size_t i = 0; i < plan.chunks().size(); ++i) {
        const auto &mc = plan.chunks()[i];
        SCOPED_TRACE("chunk " + std::to_string(i));
        // One full chunk per stratum, inside the stratum's bounds.
        EXPECT_EQ(mc.end - mc.begin, p.chunkInstructions);
        EXPECT_EQ(mc.begin % p.chunkInstructions, 0u);
        const u64 chunkIdx = mc.begin / p.chunkInstructions;
        EXPECT_EQ(chunkIdx / p.intervalChunks, i);
        EXPECT_LT(chunkIdx, fullChunks);
        // Chunks never overlap and stay ordered.
        EXPECT_GE(mc.begin, prevEnd);
        EXPECT_LE(mc.end, trace.instCount());
        // The warm window ends where the measured chunk begins and
        // never reaches back past the previous measured chunk.
        EXPECT_LE(mc.warmMemBegin, mc.memBegin);
        EXPECT_GE(mc.memBegin, prevMemBegin);
        // The slice is self-contained and the right length.
        EXPECT_EQ(mc.slice.instCount(), p.chunkInstructions);
        prevEnd = mc.end;
        prevMemBegin = mc.memBegin;
    }

    // The branch-outcome column covers the whole trace.
    EXPECT_EQ(plan.branchTaken().size(),
              trace.countOf(isa::Op::Branch));
}

TEST(SampledPlan, PlanIsDeterministic)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledParams p{500, 4, 1024};
    const SampledPlan a = prepareSampled(trace, p);
    const SampledPlan b = prepareSampled(trace, p);
    ASSERT_EQ(a.chunks().size(), b.chunks().size());
    for (size_t i = 0; i < a.chunks().size(); ++i) {
        EXPECT_EQ(a.chunks()[i].begin, b.chunks()[i].begin);
        EXPECT_EQ(a.chunks()[i].warmMemBegin, b.chunks()[i].warmMemBegin);
    }
}

TEST(SampledReplay, DeterministicAcrossRuns)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledParams p{500, 4, 1024};
    const MachineConfig m = outOfOrder4Way();
    const SampledResult a = replayTraceSampled(trace, m, p);
    const SampledResult b = replayTraceSampled(trace, m, p);
    EXPECT_FALSE(a.exact);
    expectIdenticalEstimates(a, b, "run-to-run");

    // Through a shared prepared plan as well (the sweep path).
    const SampledPlan plan = prepareSampled(trace, p);
    const SampledResult c = replayTraceSampled(plan, m);
    expectIdenticalEstimates(a, c, "convenience vs prepared plan");
}

TEST(SampledReplay, DeterministicAcrossSimdLevels)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledParams p{500, 4, 1024};
    const MachineConfig m = outOfOrder4Way();
    const SampledResult native = replayTraceSampled(trace, m, p);
    const auto guard =
        withSimd(simd::activeLevel() == simd::Level::Scalar);
    const SampledResult flipped = replayTraceSampled(trace, m, p);
    expectIdenticalEstimates(native, flipped, "simd flip");
}

TEST(SampledReplay, DeterministicAcrossEventSkip)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledParams p{500, 4, 1024};
    const SampledResult off = replayTraceSampled(
        trace, withEventSkip(outOfOrder4Way(), false), p);
    const SampledResult on = replayTraceSampled(
        trace, withEventSkip(outOfOrder4Way(), true), p);
    expectIdenticalEstimates(off, on, "event-skip off vs on");
}

TEST(SampledReplay, EstimateInternallyConsistent)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledResult r =
        replayTraceSampled(trace, outOfOrder4Way(), {500, 4, 1024});
    ASSERT_FALSE(r.exact);
    EXPECT_EQ(r.instructions, trace.instCount());
    EXPECT_GT(r.measuredChunks, 1u);
    EXPECT_LT(r.measuredInstructions, r.instructions);
    EXPECT_GT(r.cpi.mean, 0.0);
    EXPECT_GE(r.cpi.ci95, 0.0);
    // cycles is cpi scaled to the whole trace, by construction.
    EXPECT_DOUBLE_EQ(r.cycles.mean,
                     r.cpi.mean * static_cast<double>(r.instructions));
    EXPECT_DOUBLE_EQ(r.cycles.ci95,
                     r.cpi.ci95 * static_cast<double>(r.instructions));
    // The stall split is a partition of measured cycles.
    const double sum = r.fracBusy.mean + r.fracFuStall.mean +
                       r.fracMemL1Hit.mean + r.fracMemL1Miss.mean;
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(SampledReplay, AccuracyOnSmallKernel)
{
    const prog::RecordedTrace trace = smallTrace();
    const MachineConfig m = outOfOrder4Way();
    const RunResult full = replayTrace(trace, m);
    const double exactCpi = static_cast<double>(full.exec.cycles) /
                            static_cast<double>(full.exec.retired);
    // Chunks well above the window-fill transient (see SampledParams):
    // sub-2000-instruction chunks carry a consistent startup bias that
    // the 5% bound here is not meant to absorb.
    const SampledResult r = replayTraceSampled(trace, m, {2000, 4, 4096});
    ASSERT_FALSE(r.exact);
    EXPECT_NEAR(r.cpi.mean, exactCpi, 0.05 * exactCpi);
}

TEST(SampledReplay, InOrderMachineFallsBackToExact)
{
    const prog::RecordedTrace trace = smallTrace();
    const MachineConfig m = inOrder4Way();
    const SampledResult r = replayTraceSampled(trace, m, {500, 4, 1024});
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.cpi.ci95, 0.0);
    EXPECT_EQ(r.cycles.ci95, 0.0);
    const RunResult full = replayTrace(trace, m);
    EXPECT_EQ(r.full.exec.cycles, full.exec.cycles);
    EXPECT_EQ(static_cast<u64>(r.cycles.mean), full.exec.cycles);
    EXPECT_EQ(r.measuredInstructions, r.instructions);
}

TEST(SampledReplay, ReferenceModelFallsBackToExact)
{
    const prog::RecordedTrace trace = smallTrace();
    const SampledResult r = replayTraceSampled(
        trace, asReference(outOfOrder4Way()), {500, 4, 1024});
    EXPECT_TRUE(r.exact);
}

TEST(SampledReplay, ShortTraceFallsBackToExact)
{
    const MachineConfig m = outOfOrder4Way();
    const prog::RecordedTrace tiny = smallTrace().prefix(3000);
    // 3000 instructions cannot hold two full 2000-instruction chunks.
    const SampledResult r =
        replayTraceSampled(tiny, m, {2000, 1, 1024});
    EXPECT_TRUE(r.exact);
    const RunResult full = replayTrace(tiny, m);
    EXPECT_EQ(r.full.exec.cycles, full.exec.cycles);
}

TEST(SampledReplay, FallbackEstimatesMatchExactStats)
{
    const prog::RecordedTrace trace = smallTrace();
    const MachineConfig m = inOrder1Way();
    const SampledResult r = replayTraceSampled(trace, m, {500, 4, 1024});
    ASSERT_TRUE(r.exact);
    const RunResult full = replayTrace(trace, m);
    const double cpi = static_cast<double>(full.exec.cycles) /
                       static_cast<double>(full.exec.retired);
    EXPECT_DOUBLE_EQ(r.cpi.mean, cpi);
    EXPECT_DOUBLE_EQ(r.mispredictRate.mean,
                     static_cast<double>(full.exec.mispredicts) /
                         static_cast<double>(full.exec.branches));
}

TEST(SampledReplay, AccuracyOnJpegCodec)
{
    // One codec workload end to end at the production default params:
    // the committed accuracy report (BENCH_sampled.json) holds every
    // benchmark x variant within 2%; this pins one representative in
    // the test suite.
    const prog::RecordedTrace trace = traceFor("djpeg", Variant::Vis);
    const MachineConfig m = outOfOrder4Way();
    const RunResult full = replayTrace(trace, m);
    const double exactCpi = static_cast<double>(full.exec.cycles) /
                            static_cast<double>(full.exec.retired);
    const SampledResult r = replayTraceSampled(trace, m, {});
    ASSERT_FALSE(r.exact);
    EXPECT_NEAR(r.cpi.mean, exactCpi, 0.02 * exactCpi);
}

} // namespace
} // namespace msim::sim
