/**
 * @file
 * Tests for the VSDK-style image kernels. Every kernel self-verifies
 * its output against a native reference inside run*() (panicking on
 * mismatch), so simply running each variant is a functional test; on
 * top of that we check the instruction-stream properties the paper's
 * analysis relies on.
 */

#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "isa/inst.hh"
#include "kernels/addition.hh"
#include "kernels/blend.hh"
#include "kernels/conv.hh"
#include "kernels/copy_invert.hh"
#include "kernels/dotprod.hh"
#include "kernels/erode.hh"
#include "kernels/lookup.hh"
#include "kernels/scaling.hh"
#include "kernels/sepconv.hh"
#include "kernels/thresh.hh"
#include "kernels/transpose.hh"
#include "prog/trace_builder.hh"

namespace msim::kernels
{
namespace
{

using isa::CountingSink;
using isa::MixClass;
using isa::Op;
using prog::TraceBuilder;

struct KernelCase
{
    const char *name;
    std::function<void(TraceBuilder &, Variant)> run;
};

const KernelCase kCases[] = {
    {"addition",
     [](TraceBuilder &tb, Variant v) { runAddition(tb, v, 64, 16, 3); }},
    {"blend",
     [](TraceBuilder &tb, Variant v) { runBlend(tb, v, 64, 16, 3); }},
    {"conv",
     [](TraceBuilder &tb, Variant v) { runConv(tb, v, 64, 16); }},
    {"dotprod",
     [](TraceBuilder &tb, Variant v) { runDotprod(tb, v, 4096); }},
    {"scaling",
     [](TraceBuilder &tb, Variant v) { runScaling(tb, v, 64, 16, 3); }},
    {"thresh",
     [](TraceBuilder &tb, Variant v) { runThresh(tb, v, 64, 16, 3); }},
    {"copy",
     [](TraceBuilder &tb, Variant v) { runCopy(tb, v, 64, 16, 3); }},
    {"invert",
     [](TraceBuilder &tb, Variant v) { runInvert(tb, v, 64, 16, 3); }},
    {"sepconv",
     [](TraceBuilder &tb, Variant v) { runSepconv(tb, v, 64, 16); }},
    {"lookup",
     [](TraceBuilder &tb, Variant v) { runLookup(tb, v, 64, 16, 3); }},
    {"transpose",
     [](TraceBuilder &tb, Variant v) { runTranspose(tb, v, 64, 16); }},
    {"erode",
     [](TraceBuilder &tb, Variant v) { runErode(tb, v, 64, 16); }},
};

/** Kernels whose "VIS" path is mostly scalar (gather / block moves). */
bool
visInapplicable(const char *name)
{
    return std::string(name) == "copy" || std::string(name) == "lookup";
}

class KernelTest : public ::testing::TestWithParam<const KernelCase *>
{
  protected:
    CountingSink
    runVariant(Variant v)
    {
        CountingSink sink;
        TraceBuilder tb(sink);
        GetParam()->run(tb, v);
        return sink;
    }
};

TEST_P(KernelTest, ScalarVerifies)
{
    const CountingSink s = runVariant(Variant::Scalar);
    EXPECT_GT(s.total(), 0u);
    EXPECT_EQ(s.byMix(MixClass::Vis), 0u); // scalar code has no VIS ops
}

TEST_P(KernelTest, VisVerifies)
{
    const CountingSink s = runVariant(Variant::Vis);
    // copy/lookup "VIS" paths are block moves / scalar gathers with few
    // or no VIS ALU ops (the paper's VIS-inapplicable cases).
    if (!visInapplicable(GetParam()->name))
        EXPECT_GT(s.byMix(MixClass::Vis), 0u);
    else
        EXPECT_GT(s.total(), 0u);
}

TEST_P(KernelTest, PrefetchVerifiesAndEmitsPrefetches)
{
    const CountingSink s = runVariant(Variant::VisPrefetch);
    EXPECT_GT(s.byOp(Op::Prefetch), 0u);
}

TEST_P(KernelTest, VisReducesDynamicInstructionCount)
{
    const u64 scalar = runVariant(Variant::Scalar).total();
    const u64 vis = runVariant(Variant::Vis).total();
    if (visInapplicable(GetParam()->name))
        EXPECT_LE(vis, scalar + scalar / 10); // roughly unchanged
    else
        EXPECT_LT(vis, scalar);
}

TEST_P(KernelTest, VisReducesMemoryOperations)
{
    const u64 scalar = runVariant(Variant::Scalar).byMix(MixClass::Memory);
    const u64 vis = runVariant(Variant::Vis).byMix(MixClass::Memory);
    EXPECT_LT(vis, scalar);
}

TEST_P(KernelTest, VisReducesBranchCount)
{
    const u64 scalar = runVariant(Variant::Scalar).byMix(MixClass::Branch);
    const u64 vis = runVariant(Variant::Vis).byMix(MixClass::Branch);
    EXPECT_LE(vis, scalar);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTest,
    ::testing::Values(&kCases[0], &kCases[1], &kCases[2], &kCases[3],
                      &kCases[4], &kCases[5], &kCases[6], &kCases[7],
                      &kCases[8], &kCases[9], &kCases[10], &kCases[11]),
    [](const auto &info) { return std::string(info.param->name); });

TEST(KernelProperties, TransposeUsesMergeNetwork)
{
    CountingSink s;
    TraceBuilder tb(s);
    runTranspose(tb, Variant::Vis, 64, 16);
    // 3 rounds x 8 merges per 8x8 block.
    const u64 blocks = (64 / 8) * (16 / 8);
    EXPECT_GE(s.byOp(Op::VisPack), blocks * 24);
    // And far fewer memory ops than the scalar byte-by-byte version.
    CountingSink s2;
    TraceBuilder t2(s2);
    runTranspose(t2, Variant::Scalar, 64, 16);
    EXPECT_LT(s.byMix(MixClass::Memory) * 3,
              s2.byMix(MixClass::Memory));
}

TEST(KernelProperties, ErodeScalarBranchesAreDataDependent)
{
    CountingSink s;
    TraceBuilder tb(s);
    runErode(tb, Variant::Scalar, 64, 32);
    // Short-circuit evaluation: at least one branch per interior pixel.
    EXPECT_GT(s.byMix(MixClass::Branch), u64{62 * 30});
    // The VIS version eliminates nearly all of them.
    CountingSink s2;
    TraceBuilder t2(s2);
    runErode(t2, Variant::Vis, 64, 32);
    EXPECT_LT(s2.byMix(MixClass::Branch), s.byMix(MixClass::Branch) / 4);
}

TEST(KernelProperties, LookupIsAGatherInBothVariants)
{
    // The indirect load stream (A[B[i]]) cannot be vectorized: the VIS
    // variant keeps one gather load per pixel.
    CountingSink s;
    TraceBuilder tb(s);
    runLookup(tb, Variant::Vis, 64, 16, 1);
    EXPECT_GE(s.byOp(Op::Load), u64{2 * 64 * 16}); // src + table per px
}

TEST(KernelProperties, SepconvTwoPassStructure)
{
    // The separable version does strictly fewer multiplies than the
    // general 3x3 convolution (6 vs 9 taps per pixel, scalar).
    CountingSink gen, sep;
    TraceBuilder t1(gen), t2(sep);
    runConv(t1, Variant::Scalar, 64, 32);
    runSepconv(t2, Variant::Scalar, 64, 32);
    EXPECT_LT(sep.byOp(Op::IntMul), gen.byOp(Op::IntMul));
}

TEST(KernelProperties, DotprodBenefitsLeastFromVis)
{
    // Paper Section 3.2.3: the 16x16 multiply emulation limits dotprod.
    auto ratio_of = [](const KernelCase &c) {
        CountingSink s1, s2;
        TraceBuilder t1(s1), t2(s2);
        c.run(t1, Variant::Scalar);
        c.run(t2, Variant::Vis);
        return double(s2.total()) / double(s1.total());
    };
    const double dot = ratio_of(kCases[3]);
    const double add = ratio_of(kCases[0]);
    const double scale = ratio_of(kCases[4]);
    EXPECT_GT(dot, add);
    EXPECT_GT(dot, scale);
}

TEST(KernelProperties, ConvScalarHasDataDependentBranches)
{
    // Saturation branches exist and fire on real data.
    CountingSink s;
    TraceBuilder tb(s);
    runConv(tb, Variant::Scalar, 64, 32);
    EXPECT_GT(s.byMix(MixClass::Branch), 64u * 30u); // >1 per pixel
}

TEST(KernelProperties, ThreshVisUsesPartialStores)
{
    CountingSink s;
    TraceBuilder tb(s);
    runThresh(tb, Variant::Vis, 64, 16, 3);
    // Two stores per 4 pixels: the pass-through and the masked store.
    EXPECT_GE(s.byOp(Op::Store), u64{64 * 16 * 3 / 4});
}

TEST(KernelProperties, AdditionVisUsesExpandPackAlign)
{
    CountingSink s;
    TraceBuilder tb(s);
    runAddition(tb, Variant::Vis, 64, 16, 3);
    EXPECT_GT(s.byOp(Op::VisPack), 0u);
    EXPECT_GT(s.byOp(Op::VisAlign), 0u);
}

TEST(KernelProperties, PrefetchDistanceCoversLines)
{
    // One prefetch per stream per 64-byte line.
    CountingSink s;
    TraceBuilder tb(s);
    runCopy(tb, Variant::VisPrefetch, 64, 16, 3);
    const u64 lines = 64 * 16 * 3 / 64;
    EXPECT_NEAR(double(s.byOp(Op::Prefetch)), double(2 * lines),
                double(lines));
}

TEST(KernelProperties, OddSizesStillVerify)
{
    // Row lengths that are not multiples of the VIS vector width
    // exercise the edge-mask tails.
    CountingSink s;
    TraceBuilder tb(s);
    runConv(tb, Variant::Vis, 37, 11);
    runScaling(tb, Variant::Vis, 24, 10, 1);
    SUCCEED();
}

} // namespace
} // namespace msim::kernels
