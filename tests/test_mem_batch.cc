/**
 * @file
 * Batched memory layer: mem::BatchMemory must be counter- and
 * timestamp-exact against per-lane Hierarchy objects (the batched
 * layer forced off) and sequential replay for every benchmark ×
 * variant, including the structural edge cases — a single lane, a
 * maximal lane count, all-distinct geometries, duplicate configs,
 * lane sets mixing batched and fallback engines — plus direct checks
 * of the geometry-class grouping and the timing-free multi-lane tag
 * probe against each member cache's own state.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "kernels/addition.hh"
#include "mem/batch.hh"
#include "mem/cache.hh"
#include "prog/recorded_trace.hh"
#include "sim/machine.hh"
#include "sim/runner.hh"

namespace msim::sim
{
namespace
{

using prog::Variant;

/** Assert every RunResult field matches exactly (doubles included). */
void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &label)
{
    SCOPED_TRACE(label);
    EXPECT_EQ(a.exec.cycles, b.exec.cycles);
    EXPECT_EQ(a.exec.retired, b.exec.retired);
    EXPECT_EQ(a.exec.busy, b.exec.busy);
    EXPECT_EQ(a.exec.fuStall, b.exec.fuStall);
    EXPECT_EQ(a.exec.memL1Hit, b.exec.memL1Hit);
    EXPECT_EQ(a.exec.memL1Miss, b.exec.memL1Miss);
    EXPECT_EQ(a.exec.mixFu, b.exec.mixFu);
    EXPECT_EQ(a.exec.mixBranch, b.exec.mixBranch);
    EXPECT_EQ(a.exec.mixMemory, b.exec.mixMemory);
    EXPECT_EQ(a.exec.mixVis, b.exec.mixVis);
    EXPECT_EQ(a.exec.branches, b.exec.branches);
    EXPECT_EQ(a.exec.mispredicts, b.exec.mispredicts);
    EXPECT_EQ(a.exec.loadsL1, b.exec.loadsL1);
    EXPECT_EQ(a.exec.loadsL2, b.exec.loadsL2);
    EXPECT_EQ(a.exec.loadsMem, b.exec.loadsMem);
    EXPECT_EQ(a.exec.prefetchesIssued, b.exec.prefetchesIssued);
    EXPECT_EQ(a.exec.prefetchesDropped, b.exec.prefetchesDropped);

    EXPECT_EQ(a.l1.accesses, b.l1.accesses);
    EXPECT_EQ(a.l1.hits, b.l1.hits);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
    EXPECT_EQ(a.l1.writebacks, b.l1.writebacks);
    EXPECT_EQ(a.l1.prefetchDrops, b.l1.prefetchDrops);
    EXPECT_EQ(a.l1.combined, b.l1.combined);
    EXPECT_EQ(a.l1.blocked, b.l1.blocked);
    EXPECT_EQ(a.l2.accesses, b.l2.accesses);
    EXPECT_EQ(a.l2.hits, b.l2.hits);
    EXPECT_EQ(a.l2.misses, b.l2.misses);
    EXPECT_EQ(a.l2.writebacks, b.l2.writebacks);

    EXPECT_EQ(a.tbInstrs, b.tbInstrs);
    EXPECT_EQ(a.visOps, b.visOps);
    EXPECT_EQ(a.visOverheadOps, b.visOverheadOps);
}

/**
 * The membatch contract: the batched memory layer forced on must be
 * field-exact against the same lockstep traversal over private
 * Hierarchy objects (forced off) and against sequential replay.
 * tools/audit_fuzz --mode membatch emits repro tests calling this
 * helper; keep the signature stable.
 */
void
expectBatchMemIdentical(const prog::RecordedTrace &trace,
                        const std::vector<MachineConfig> &machines,
                        u64 chunk = 0)
{
    std::vector<RunResult> on, off;
    {
        mem::ScopedBatchMem guard(true);
        on = replayTraceBatch(trace, machines, chunk);
    }
    {
        mem::ScopedBatchMem guard(false);
        off = replayTraceBatch(trace, machines, chunk);
    }
    ASSERT_EQ(on.size(), machines.size());
    ASSERT_EQ(off.size(), machines.size());
    for (size_t i = 0; i < machines.size(); ++i) {
        const std::string label =
            "lane " + std::to_string(i) + " chunk " + std::to_string(chunk);
        expectIdentical(off[i], on[i], "batchmem on vs off, " + label);
        const auto seq = replayTrace(trace, machines[i]);
        expectIdentical(seq, on[i], "batchmem on vs sequential, " + label);
    }
}

Generator
generatorFor(const std::string &name, Variant variant)
{
    const core::Benchmark &bench = core::findBenchmark(name);
    return [&bench, variant](prog::TraceBuilder &tb) {
        bench.generate(tb, variant);
    };
}

prog::RecordedTrace
additionTrace(Variant variant = Variant::Vis)
{
    const MachineConfig base = outOfOrder4Way();
    return recordTrace(
        [variant](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, variant, 256, 32, 2);
        },
        base.skewArrays, base.visFeatures);
}

/** Geometry-heavy sweep: shared classes, distinct classes, and lanes
 *  differing only in timing (MSHRs, ports) within one class. */
std::vector<MachineConfig>
geometrySweep()
{
    std::vector<MachineConfig> machines = {
        outOfOrder4Way(), withL1Size(1 << 10), withL1Size(4 << 10),
        withL2Size(128 << 10)};
    MachineConfig mshr_limited = outOfOrder4Way();
    mshr_limited.mem.l1.numMshrs = 1;
    mshr_limited.mem.l2.numMshrs = 2;
    machines.push_back(mshr_limited);
    MachineConfig wide_line = outOfOrder4Way();
    wide_line.mem.l1.lineBytes = 32;
    wide_line.mem.l2.lineBytes = 32;
    machines.push_back(wide_line);
    MachineConfig direct_mapped = outOfOrder4Way();
    direct_mapped.mem.l1.assoc = 1;
    machines.push_back(direct_mapped);
    return machines;
}

TEST(MemBatch, SingleLane)
{
    const auto trace = additionTrace();
    expectBatchMemIdentical(trace, {outOfOrder4Way()});

    const mem::MemConfig config = outOfOrder4Way().mem;
    mem::BatchMemory bm(std::span<const mem::MemConfig>(&config, 1));
    EXPECT_EQ(bm.laneCount(), 1u);
    EXPECT_EQ(bm.classCount(0), 1u);
    EXPECT_EQ(bm.classCount(1), 1u);
    EXPECT_EQ(bm.classMembers(0, 0), std::vector<size_t>{0});
}

TEST(MemBatch, MaxLanes)
{
    // 64 lanes cycling through four L1 sizes: 16 members per geometry
    // class, exercising multi-word-free (but wide) member bit folds and
    // the largest arena strides the sweeps produce.
    std::vector<MachineConfig> machines;
    for (u32 i = 0; i < 64; ++i)
        machines.push_back(withL1Size(1u << (10 + (i % 4))));
    const auto trace = additionTrace();
    expectBatchMemIdentical(trace, machines);

    std::vector<mem::MemConfig> configs;
    for (const auto &m : machines)
        configs.push_back(m.mem);
    mem::BatchMemory bm(configs);
    EXPECT_EQ(bm.laneCount(), 64u);
    EXPECT_EQ(bm.classCount(0), 4u);
    for (size_t cls = 0; cls < 4; ++cls)
        EXPECT_EQ(bm.classMembers(0, cls).size(), 16u);
    // All 64 lanes share the L2 geometry.
    EXPECT_EQ(bm.classCount(1), 1u);
    EXPECT_EQ(bm.classMembers(1, 0).size(), 64u);
}

TEST(MemBatch, AllDistinctGeometries)
{
    std::vector<MachineConfig> machines;
    for (u32 i = 0; i < 5; ++i)
        machines.push_back(withL1Size(1u << (10 + i)));
    const auto trace = additionTrace();
    expectBatchMemIdentical(trace, machines);

    std::vector<mem::MemConfig> configs;
    for (const auto &m : machines)
        configs.push_back(m.mem);
    mem::BatchMemory bm(configs);
    EXPECT_EQ(bm.classCount(0), 5u);
    for (size_t cls = 0; cls < 5; ++cls)
        EXPECT_EQ(bm.classMembers(0, cls).size(), 1u);
}

/** Duplicate configs share a geometry class but never lane state:
 *  every copy reports identical numbers. */
TEST(MemBatch, DuplicateConfigs)
{
    const auto trace = additionTrace();
    const std::vector<MachineConfig> machines = {
        withL1Size(1 << 10), withL1Size(1 << 10), outOfOrder4Way(),
        withL1Size(1 << 10)};
    expectBatchMemIdentical(trace, machines);
    mem::ScopedBatchMem guard(true);
    const auto batch = replayTraceBatch(trace, machines);
    expectIdentical(batch[0], batch[1], "duplicate 0 vs 1");
    expectIdentical(batch[0], batch[3], "duplicate 0 vs 3");

    std::vector<mem::MemConfig> configs;
    for (const auto &m : machines)
        configs.push_back(m.mem);
    mem::BatchMemory bm(configs);
    EXPECT_EQ(bm.classCount(0), 2u);
}

/** Degenerate geometries must die in checkedNumSets() exactly as a
 *  private Cache would — the arena path grows no laxer validation. */
TEST(MemBatch, DegenerateConfigRejected)
{
    mem::MemConfig bad = outOfOrder4Way().mem;
    bad.l1.assoc = 0;
    EXPECT_DEATH(
        {
            mem::BatchMemory bm(std::span<const mem::MemConfig>(&bad, 1));
        },
        "");
    mem::MemConfig nonpow = outOfOrder4Way().mem;
    nonpow.l1.sizeBytes = 1000; // non-power-of-two set count
    nonpow.l1.assoc = 3;
    EXPECT_DEATH(
        {
            mem::BatchMemory bm(
                std::span<const mem::MemConfig>(&nonpow, 1));
        },
        "");
}

/** In-order, reference and >64-window lanes take replayTraceBatch's
 *  sequential fallback on private hierarchies, interleaved with
 *  batched-memory lanes, and result order must match input order. */
TEST(MemBatch, MixedFallbackLanes)
{
    const auto trace = additionTrace(Variant::Scalar);
    MachineConfig huge_window = outOfOrder4Way();
    huge_window.core.windowSize = 128;
    const std::vector<MachineConfig> machines = {
        inOrder1Way(), outOfOrder4Way(), asReference(outOfOrder4Way()),
        huge_window, withL1Size(1 << 10)};
    expectBatchMemIdentical(trace, machines);
}

/** Chunks below the window size force accesses whose memory-lane
 *  ordinal predates the current chunk's shared column (instructions
 *  still in flight), exercising the lane port's byte-address fallback
 *  next to the column fast path. */
TEST(MemBatch, TinyChunkOrdinalFallback)
{
    const auto trace = additionTrace();
    const std::vector<MachineConfig> machines = {outOfOrder4Way(),
                                                 withL1Size(1 << 10)};
    for (const u64 chunk : {u64{1}, u64{2}, u64{7}, u64{64}})
        expectBatchMemIdentical(trace, machines, chunk);
}

TEST(MemBatch, EmptyTrace)
{
    const MachineConfig base = outOfOrder4Way();
    const auto trace = recordTrace([](prog::TraceBuilder &) {},
                                   base.skewArrays, base.visFeatures);
    ASSERT_EQ(trace.instCount(), 0u);
    expectBatchMemIdentical(trace, geometrySweep());
}

/** The multi-lane tag probe must classify every member lane exactly as
 *  that lane's own cache does, after the lanes' states have diverged
 *  through different access streams. */
TEST(MemBatch, ProbeClassMatchesMemberCaches)
{
    // Three lanes, the first two sharing one geometry class.
    std::vector<mem::MemConfig> configs = {
        withL1Size(1 << 10).mem, withL1Size(1 << 10).mem,
        outOfOrder4Way().mem};
    configs[1].l1.numMshrs = 2; // same class, different timing
    mem::BatchMemory bm(configs);
    ASSERT_EQ(bm.classCount(0), 2u);
    ASSERT_EQ(bm.classMembers(0, 0).size(), 2u);

    // Diverge the lanes: lane 0 touches a dense stride, lane 1 a
    // sparse one, lane 2 everything.
    Cycle t = 0;
    for (u64 i = 0; i < 256; ++i) {
        if (i % 2 == 0)
            bm.port(0).access(i * 64, mem::AccessKind::Load, t);
        if (i % 7 == 0)
            bm.port(1).access(i * 64, mem::AccessKind::Load, t);
        bm.port(2).access(i * 64, mem::AccessKind::Load, t);
        t += 3;
    }

    for (unsigned level = 0; level < 2; ++level) {
        for (size_t cls = 0; cls < bm.classCount(level); ++cls) {
            const auto &members = bm.classMembers(level, cls);
            for (u64 i = 0; i < 256; ++i) {
                // Both levels live in the L1 line-number space (the L2
                // is indexed with L1 line numbers).
                const Addr line = (i * 64) >> 6;
                u64 bits[1] = {};
                bm.probeClass(level, cls, line, bits);
                for (size_t k = 0; k < members.size(); ++k) {
                    const auto &cache = static_cast<const mem::Cache &>(
                        level == 0 ? bm.l1(members[k])
                                   : bm.l2(members[k]));
                    EXPECT_EQ((bits[0] >> k) & 1, cache.hasLine(line))
                        << "level " << level << " class " << cls
                        << " member " << k << " line " << line;
                }
            }
        }
    }
}

void
checkBenchmark(const std::string &name,
               const std::vector<MachineConfig> &machines)
{
    for (Variant variant :
         {Variant::Scalar, Variant::Vis, Variant::VisPrefetch}) {
        SCOPED_TRACE(name + "/" +
                     std::to_string(static_cast<int>(variant)));
        const MachineConfig base = outOfOrder4Way();
        const auto trace = recordTrace(generatorFor(name, variant),
                                       base.skewArrays, base.visFeatures);
        expectBatchMemIdentical(trace, machines);
    }
}

TEST(MemBatch, ImageKernelsAllVariants)
{
    for (const char *name : {"addition", "blend", "conv", "dotprod",
                             "scaling", "thresh"})
        checkBenchmark(name, geometrySweep());
}

TEST(MemBatch, ExtraKernelsAllVariants)
{
    for (const char *name :
         {"copy", "invert", "sepconv", "lookup", "transpose", "erode"})
        checkBenchmark(name, geometrySweep());
}

/** Codecs are the expensive traces; a compact lane set still crosses
 *  shared-class, distinct-class and reference-fallback shapes. */
TEST(MemBatch, JpegCodecs)
{
    std::vector<MachineConfig> machines = {outOfOrder4Way(),
                                           withL1Size(4 << 10)};
    machines.push_back(asReference(outOfOrder4Way()));
    for (const char *name : {"cjpeg", "djpeg", "cjpeg-np", "djpeg-np"})
        checkBenchmark(name, machines);
}

TEST(MemBatch, MpegCodecs)
{
    std::vector<MachineConfig> machines = {outOfOrder4Way(),
                                           withL1Size(4 << 10)};
    machines.push_back(asReference(outOfOrder4Way()));
    for (const char *name : {"mpeg-enc", "mpeg-dec"})
        checkBenchmark(name, machines);
}

/** The batched fast path must also match the preserved reference
 *  models end-to-end: BatchMemory lanes vs RefCache + RefReplayEngine
 *  on the same trace. */
TEST(MemBatch, MatchesReferenceModels)
{
    for (const char *name : {"addition", "conv"}) {
        for (Variant variant : {Variant::Scalar, Variant::Vis}) {
            SCOPED_TRACE(std::string(name) + "/" +
                         std::to_string(static_cast<int>(variant)));
            const MachineConfig m = outOfOrder4Way();
            const auto trace = recordTrace(generatorFor(name, variant),
                                           m.skewArrays, m.visFeatures);
            mem::ScopedBatchMem guard(true);
            const std::vector<MachineConfig> lanes = {m};
            const auto batched = replayTraceBatch(trace, lanes, 0);
            const auto ref = replayTrace(trace, asReference(m));
            expectIdentical(ref, batched[0], "reference vs batched");
        }
    }
}

} // namespace
} // namespace msim::sim
