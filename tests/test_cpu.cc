/** @file Unit tests for the pipeline cores, FU pool, and predictor. */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"
#include "cpu/core.hh"
#include "cpu/fu_pool.hh"
#include "mem/hierarchy.hh"
#include "prog/trace_builder.hh"

namespace msim::cpu
{
namespace
{

using isa::Op;
using prog::TraceBuilder;
using prog::Val;

/** Run a generator on a fresh machine and return the exec stats. */
ExecStats
runOn(const CoreConfig &cfg, const std::function<void(TraceBuilder &)> &gen,
      mem::MemConfig mem_cfg = mem::MemConfig{})
{
    mem::Hierarchy mem(mem_cfg);
    PipelineCore core(cfg, mem);
    TraceBuilder tb(core, true, /*explicit_addressing=*/false);
    gen(tb);
    tb.finish();
    return core.stats();
}

TEST(FuPool, PipelinedUnitAcceptsPerCycle)
{
    FuPool pool(4); // 2 integer units
    EXPECT_TRUE(pool.available(Op::IntAlu, 0));
    EXPECT_EQ(pool.reserve(Op::IntAlu, 0), 1u);
    EXPECT_EQ(pool.reserve(Op::IntAlu, 0), 1u);
    // Both units used this cycle; third op must wait.
    EXPECT_FALSE(pool.available(Op::IntAlu, 0));
    EXPECT_TRUE(pool.available(Op::IntAlu, 1));
}

TEST(FuPool, NonPipelinedDividerBlocks)
{
    FuPool pool(4);
    EXPECT_EQ(pool.reserve(Op::FpDiv, 0), 12u);
    // Two FP units; the second divide uses the other unit.
    EXPECT_EQ(pool.reserve(Op::FpDiv, 0), 12u);
    // Third divide waits for a whole divide latency.
    EXPECT_FALSE(pool.available(Op::FpDiv, 5));
    EXPECT_EQ(pool.nextFree(Op::FpDiv, 0), 12u);
}

TEST(FuPool, MultiplyLatency)
{
    FuPool pool(4);
    EXPECT_EQ(pool.reserve(Op::IntMul, 10), 17u);
    // Pipelined: next multiply can start the following cycle.
    EXPECT_TRUE(pool.available(Op::IntMul, 11));
}

TEST(FuPool, SingleVisUnits)
{
    FuPool pool(4);
    pool.reserve(Op::VisMul, 0);
    EXPECT_FALSE(pool.available(Op::VisMul, 0));
    EXPECT_FALSE(pool.available(Op::VisPdist, 0)); // same unit
    EXPECT_TRUE(pool.available(Op::VisAdd, 0));    // different unit
}

TEST(Predictor, LearnsBias)
{
    BranchPredictor bp(64);
    int wrong = 0;
    for (int i = 0; i < 100; ++i)
        wrong += bp.predictAndUpdate(5, true) ? 0 : 1;
    EXPECT_LE(wrong, 1); // initialized weakly-taken; learns instantly
    EXPECT_EQ(bp.lookups(), 100u);
}

TEST(Predictor, AlternatingIsHard)
{
    BranchPredictor bp(64);
    int wrong = 0;
    for (int i = 0; i < 200; ++i)
        wrong += bp.predictAndUpdate(9, i % 2 == 0) ? 0 : 1;
    EXPECT_GT(wrong, 80); // ~50% or worse on alternation
}

TEST(Predictor, LoopPatternMostlyRight)
{
    BranchPredictor bp(2048);
    int wrong = 0;
    for (int iter = 0; iter < 50; ++iter)
        for (int i = 0; i < 16; ++i)
            wrong += bp.predictAndUpdate(3, i != 15) ? 0 : 1;
    // One mispredict per loop exit at steady state.
    EXPECT_LT(bp.mispredictRate(), 0.10);
}

TEST(Ras, PushPopOrder)
{
    ReturnAddressStack ras(4);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_EQ(ras.pop(), 0u); // empty
}

TEST(Ras, OverflowDropsOldest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3);
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Core, IndependentOpsReachIssueWidth)
{
    // 4000 independent integer ops on a 4-way OOO core: IPC near 2
    // (bounded by the two integer units).
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        for (int i = 0; i < 4000; ++i)
            tb.add(tb.imm(1), tb.imm(2));
    });
    EXPECT_EQ(s.retired, 4000u);
    const double ipc = double(s.retired) / double(s.cycles);
    EXPECT_GT(ipc, 1.8);
    EXPECT_LE(ipc, 2.05);
}

TEST(Core, DependentChainSerializes)
{
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        Val v = tb.imm(0);
        for (int i = 0; i < 2000; ++i)
            v = tb.add(v, tb.imm(1));
    });
    // One op per cycle at best.
    EXPECT_GE(s.cycles, 2000u);
    EXPECT_LE(s.cycles, 2200u);
}

TEST(Core, MulChainPaysLatency)
{
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        Val v = tb.imm(1);
        for (int i = 0; i < 500; ++i)
            v = tb.mul(v, tb.imm(1));
    });
    // 7-cycle dependent multiplies.
    EXPECT_GE(s.cycles, 500u * 7);
}

TEST(Core, InOrderStallsOnUseNotOnLoad)
{
    // A load miss followed by independent work: in-order with
    // non-blocking loads keeps issuing until the use.
    auto gen = [](TraceBuilder &tb) {
        const Addr a = tb.alloc(64);
        Val v = tb.load(a + 0, 1); // cold miss
        for (int i = 0; i < 50; ++i)
            tb.add(tb.imm(1), tb.imm(2)); // independent
        tb.add(v, tb.imm(1)); // the use
    };
    const ExecStats in_order = runOn(CoreConfig::inOrder1Way(), gen);
    // The 50 independent adds overlap with the ~100-cycle miss; total
    // should be close to the miss latency, not latency + 50.
    EXPECT_LT(in_order.cycles, 150u);
    EXPECT_GT(in_order.cycles, 95u);
}

TEST(Core, InOrderCannotReorderPastStall)
{
    // Dependent op right after the load blocks everything behind it on
    // an in-order core, but not on an OOO core.
    auto gen = [](TraceBuilder &tb) {
        const Addr a = tb.alloc(64);
        Val v = tb.load(a, 1);
        tb.add(v, tb.imm(1)); // immediate use: stall
        for (int i = 0; i < 48; ++i)
            tb.add(tb.imm(1), tb.imm(2));
    };
    const ExecStats io = runOn(CoreConfig::inOrder4Way(), gen);
    const ExecStats ooo = runOn(CoreConfig::outOfOrder4Way(), gen);
    // The 48 adds fit in the 64-entry window: the OOO core executes
    // them in the shadow of the miss; the in-order core runs them all
    // after the stall-on-use resolves.
    EXPECT_LT(ooo.cycles + 10, io.cycles);
}

TEST(Core, OooOverlapsIndependentMisses)
{
    // Two loads to distinct lines: the OOO core overlaps the misses.
    auto gen = [](TraceBuilder &tb) {
        const Addr a = tb.alloc(4096);
        Val v1 = tb.load(a, 1);
        Val v2 = tb.load(a + 2048, 1);
        tb.add(v1, v2);
    };
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), gen);
    // Serial misses would be > 200 cycles.
    EXPECT_LT(s.cycles, 160u);
}

TEST(Core, StoresDoNotBlockRetirement)
{
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        const Addr a = tb.alloc(4096);
        for (int i = 0; i < 8; ++i)
            tb.store(a + 512 * i, 1, tb.imm(1)); // 8 distinct cold lines
        for (int i = 0; i < 100; ++i)
            tb.add(tb.imm(1), tb.imm(2));
    });
    // Compute proceeds while the store misses drain.
    EXPECT_LT(s.cycles, 150u);
}

TEST(Core, MispredictsStallFetch)
{
    // Data-dependent alternating branches: mispredicts cost cycles.
    auto gen_with = [](bool predictable) {
        return [predictable](TraceBuilder &tb) {
            const u32 pc = tb.makePc("b");
            for (int i = 0; i < 2000; ++i) {
                Val c = tb.cmpLt(tb.imm(0), tb.imm(1));
                const bool taken = predictable ? false : (i % 2 == 0);
                tb.branch(pc, taken, c);
            }
        };
    };
    const ExecStats good =
        runOn(CoreConfig::outOfOrder4Way(), gen_with(true));
    const ExecStats bad =
        runOn(CoreConfig::outOfOrder4Way(), gen_with(false));
    EXPECT_LT(good.mispredictRate(), 0.02);
    EXPECT_GT(bad.mispredictRate(), 0.3);
    EXPECT_GT(bad.cycles, good.cycles + 1000);
}

TEST(Core, TakenBranchLimitOnePerCycle)
{
    // All-taken branches: at most one per cycle can be fetched.
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        const u32 pc = tb.makePc("t");
        for (int i = 0; i < 1000; ++i)
            tb.branch(pc, true);
    });
    EXPECT_GE(s.cycles, 1000u);
}

TEST(Core, StoreToLoadForwarding)
{
    // A load that reads a just-stored location completes quickly
    // (forwarded), not at memory-miss latency.
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        const Addr a = tb.alloc(64);
        tb.store(a, 8, tb.imm(42));
        Val v = tb.load(a, 8);
        tb.add(v, tb.imm(1));
    });
    EXPECT_LT(s.cycles, 40u);
    EXPECT_EQ(s.loadsL1, 1u);
}

TEST(Core, AccountingSumsToTotal)
{
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        const Addr a = tb.alloc(1 << 16);
        Val acc = tb.imm(0);
        for (unsigned i = 0; i < 3000; ++i) {
            Val v = tb.load(a + (i * 64) % (1 << 16), 1);
            acc = tb.add(acc, v);
        }
    });
    const double sum = s.busy + s.fuStall + s.memL1Hit + s.memL1Miss;
    EXPECT_NEAR(sum, static_cast<double>(s.cycles),
                static_cast<double>(s.cycles) * 0.01 + 2);
}

TEST(Core, RetiredCountsMatchFed)
{
    const ExecStats s = runOn(CoreConfig::inOrder1Way(), [](auto &tb) {
        const Addr a = tb.alloc(64);
        for (int i = 0; i < 10; ++i) {
            tb.add(tb.imm(1), tb.imm(1));
            tb.load(a, 1);
            tb.store(a, 1, tb.imm(2));
            tb.branch(1, false);
        }
    });
    EXPECT_EQ(s.retired, 40u);
    EXPECT_EQ(s.mixFu, 10u);
    EXPECT_EQ(s.mixMemory, 20u);
    EXPECT_EQ(s.mixBranch, 10u);
}

TEST(Core, MemQueueLimitsThroughput)
{
    // More outstanding byte-store misses than the 32-entry memory queue
    // allows: dispatch backpressure shows up as extra cycles.
    CoreConfig small = CoreConfig::outOfOrder4Way();
    small.memQueueSize = 4;
    CoreConfig big = CoreConfig::outOfOrder4Way();

    auto gen = [](TraceBuilder &tb) {
        const Addr a = tb.alloc(1 << 20);
        for (unsigned i = 0; i < 256; ++i)
            tb.store(a + Addr{i} * 4096, 1, tb.imm(1));
    };
    const ExecStats s_small = runOn(small, gen);
    const ExecStats s_big = runOn(big, gen);
    EXPECT_GT(s_small.cycles, s_big.cycles);
}

TEST(Core, PrefetchHidesLatency)
{
    auto gen_with = [](bool prefetch) {
        return [prefetch](TraceBuilder &tb) {
            const Addr a = tb.alloc(1 << 18);
            Val acc = tb.imm(0);
            for (unsigned i = 0; i < 2048; ++i) {
                if (prefetch && i % 2 == 0)
                    tb.prefetch(a + Addr{i + 64} * 32);
                Val v = tb.load(a + Addr{i} * 32, 1);
                acc = tb.add(acc, v);
                // enough computation per element to hide latency behind
                for (int k = 0; k < 24; ++k)
                    tb.add(tb.imm(1), tb.imm(1));
            }
        };
    };
    const ExecStats without =
        runOn(CoreConfig::outOfOrder4Way(), gen_with(false));
    const ExecStats with =
        runOn(CoreConfig::outOfOrder4Way(), gen_with(true));
    EXPECT_LT(with.cycles, without.cycles);
    EXPECT_LT(with.memL1Miss, without.memL1Miss);
    EXPECT_GT(with.prefetchesIssued, 0u);
}

TEST(Core, VisUnitsAreSingle)
{
    // Independent VIS adds are limited by the single VIS adder.
    const ExecStats s = runOn(CoreConfig::outOfOrder4Way(), [](auto &tb) {
        for (int i = 0; i < 1000; ++i)
            tb.vfpadd16(tb.imm(1), tb.imm(2));
    });
    EXPECT_GE(s.cycles, 1000u);
}

TEST(Core, WidthMattersForParallelWork)
{
    auto gen = [](TraceBuilder &tb) {
        for (int i = 0; i < 4000; ++i)
            tb.add(tb.imm(1), tb.imm(2));
    };
    const ExecStats w1 = runOn(CoreConfig::inOrder1Way(), gen);
    const ExecStats w4 = runOn(CoreConfig::inOrder4Way(), gen);
    EXPECT_GT(w1.cycles, w4.cycles * 3 / 2);
}

} // namespace
} // namespace msim::cpu
