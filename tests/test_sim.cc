/** @file Integration tests: registry, runner, machines, experiments. */

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.hh"
#include "common/simd.hh"
#include "core/experiment.hh"
#include "core/registry.hh"
#include "core/report.hh"
#include "cpu/core.hh"
#include "kernels/addition.hh"
#include "kernels/dotprod.hh"
#include "sim/machine.hh"

namespace msim::core
{
namespace
{

using prog::Variant;

/** A small, fast workload used for machine-level comparisons. */
sim::RunResult
runSmall(Variant var, const sim::MachineConfig &m)
{
    return sim::runTrace(
        [var](prog::TraceBuilder &tb) {
            kernels::runAddition(tb, var, 128, 32, 3);
        },
        m);
}

TEST(Registry, HasTheTwelvePaperBenchmarks)
{
    const auto paper = paperBenchmarks();
    ASSERT_EQ(paper.size(), 12u);
    const char *expected[] = {"addition", "blend",    "conv",
                              "dotprod",  "scaling",  "thresh",
                              "cjpeg",    "djpeg",    "cjpeg-np",
                              "djpeg-np", "mpeg-enc", "mpeg-dec"};
    for (unsigned i = 0; i < 12; ++i)
        EXPECT_EQ(paper[i]->name, expected[i]);
}

TEST(Registry, CategoriesMatchTable1)
{
    EXPECT_EQ(findBenchmark("conv").category, Category::ImageKernel);
    EXPECT_EQ(findBenchmark("cjpeg").category, Category::ImageCoding);
    EXPECT_EQ(findBenchmark("mpeg-enc").category, Category::VideoCoding);
}

TEST(Registry, PrefetchFlagsMatchFigure3)
{
    // Figure 3 omits cjpeg-np, djpeg-np, and mpeg-enc (<6% miss time).
    EXPECT_FALSE(findBenchmark("cjpeg-np").hasPrefetchVariant);
    EXPECT_FALSE(findBenchmark("djpeg-np").hasPrefetchVariant);
    EXPECT_FALSE(findBenchmark("mpeg-enc").hasPrefetchVariant);
    EXPECT_TRUE(findBenchmark("addition").hasPrefetchVariant);
    EXPECT_TRUE(findBenchmark("mpeg-dec").hasPrefetchVariant);
}

TEST(Machines, LabelsAndShapes)
{
    EXPECT_FALSE(sim::inOrder1Way().core.outOfOrder);
    EXPECT_EQ(sim::inOrder1Way().core.issueWidth, 1u);
    EXPECT_EQ(sim::inOrder4Way().core.issueWidth, 4u);
    EXPECT_TRUE(sim::outOfOrder4Way().core.outOfOrder);
    EXPECT_EQ(sim::withL2Size(2 << 20).mem.l2.sizeBytes, 2u << 20);
    EXPECT_EQ(sim::withL1Size(4096).mem.l1.sizeBytes, 4096u);
    // Table 2/3 defaults.
    const auto def = sim::outOfOrder4Way();
    EXPECT_EQ(def.core.windowSize, 64u);
    EXPECT_EQ(def.core.memQueueSize, 32u);
    EXPECT_EQ(def.mem.l1.sizeBytes, 64u * 1024);
    EXPECT_EQ(def.mem.l2.sizeBytes, 128u * 1024);
    EXPECT_EQ(def.mem.l1.hitLatency, 2u);
    EXPECT_EQ(def.mem.l2.hitLatency, 20u);
    EXPECT_EQ(def.mem.dram.totalLatency, 100u);
}

TEST(Experiment, IlpOrderingHolds)
{
    const auto r1 = runSmall(Variant::Scalar, sim::inOrder1Way());
    const auto r4 = runSmall(Variant::Scalar, sim::inOrder4Way());
    const auto ro = runSmall(Variant::Scalar, sim::outOfOrder4Way());
    EXPECT_GT(r1.exec.cycles, r4.exec.cycles);
    EXPECT_GT(r4.exec.cycles, ro.exec.cycles);
}

TEST(Experiment, VisImprovesAndShrinksInstructionCount)
{
    const auto base = runSmall(Variant::Scalar, sim::outOfOrder4Way());
    const auto vis = runSmall(Variant::Vis, sim::outOfOrder4Way());
    EXPECT_LT(vis.exec.cycles, base.exec.cycles);
    EXPECT_LT(vis.tbInstrs, base.tbInstrs);
    EXPECT_GT(vis.visOps, 0u);
    EXPECT_GT(vis.visOverheadFrac(), 0.1); // rearrangement overhead real
    EXPECT_LT(vis.visOverheadFrac(), 0.9);
}

TEST(Experiment, PrefetchingCutsMissStall)
{
    const auto vis = runSmall(Variant::Vis, sim::outOfOrder4Way());
    const auto pf = runSmall(Variant::VisPrefetch, sim::outOfOrder4Way());
    EXPECT_LT(pf.exec.memL1Miss, vis.exec.memL1Miss);
    EXPECT_LT(pf.exec.cycles, vis.exec.cycles);
    EXPECT_GT(pf.exec.prefetchesIssued, 0u);
}

TEST(Experiment, StreamingKernelInsensitiveToL2Size)
{
    // Paper Section 4.1: no-reuse streams see no benefit from larger L2.
    const auto small = runSmall(Variant::Vis, sim::withL2Size(128 << 10));
    const auto big = runSmall(Variant::Vis, sim::withL2Size(2 << 20));
    const double delta =
        std::abs(double(small.exec.cycles) - double(big.exec.cycles));
    EXPECT_LT(delta / double(small.exec.cycles), 0.05);
}

TEST(Experiment, CacheStatsArePlumbedThrough)
{
    const auto r = runSmall(Variant::Scalar, sim::outOfOrder4Way());
    EXPECT_GT(r.l1.accesses, 0u);
    EXPECT_GT(r.l1.misses, 0u);
    EXPECT_GT(r.l2.accesses, 0u);
    EXPECT_GT(r.l1.missRate, 0.0);
    EXPECT_LE(r.l1.missRate, 1.0);
}

TEST(Experiment, RunJobsMatchesSequentialRuns)
{
    std::vector<Job> jobs;
    jobs.push_back({"scaling", Variant::Scalar, sim::outOfOrder4Way()});
    jobs.push_back({"scaling", Variant::Vis, sim::outOfOrder4Way()});
    jobs.push_back({"thresh", Variant::Scalar, sim::inOrder1Way()});
    const auto par = runJobs(jobs, 3);
    ASSERT_EQ(par.size(), 3u);
    const auto seq0 =
        runBenchmark("scaling", Variant::Scalar, sim::outOfOrder4Way());
    EXPECT_EQ(par[0].exec.cycles, seq0.exec.cycles);
    EXPECT_EQ(par[0].tbInstrs, seq0.tbInstrs);
}

TEST(Experiment, DeterministicAcrossRuns)
{
    const auto a = runSmall(Variant::Vis, sim::outOfOrder4Way());
    const auto b = runSmall(Variant::Vis, sim::outOfOrder4Way());
    EXPECT_EQ(a.exec.cycles, b.exec.cycles);
    EXPECT_EQ(a.tbInstrs, b.tbInstrs);
    EXPECT_EQ(a.l1.misses, b.l1.misses);
}

TEST(Experiment, SkewAblationChangesConflictBehaviour)
{
    // Paper footnote 3: un-skewed concurrent arrays conflict in the
    // 2-way L1 and hurt performance.
    auto gen = [](prog::TraceBuilder &tb) {
        kernels::runAddition(tb, Variant::Scalar, 256, 48, 3);
    };
    sim::MachineConfig skewed = sim::outOfOrder4Way();
    sim::MachineConfig packed = sim::outOfOrder4Way();
    packed.skewArrays = false;
    const auto a = sim::runTrace(gen, skewed);
    const auto b = sim::runTrace(gen, packed);
    // The layouts must at least differ in measured behaviour.
    EXPECT_NE(a.l1.misses, b.l1.misses);
}

TEST(Experiment, IsaFeaturesChangeInstructionCounts)
{
    sim::MachineConfig mmx = sim::outOfOrder4Way();
    mmx.visFeatures.direct16x16Mul = true;
    mmx.visFeatures.hasPmaddwd = true;
    auto gen = [](prog::TraceBuilder &tb) {
        kernels::runDotprod(tb, Variant::Vis, 4096);
    };
    const auto vis = sim::runTrace(gen, sim::outOfOrder4Way());
    const auto fast = sim::runTrace(gen, mmx);
    EXPECT_LT(fast.tbInstrs, vis.tbInstrs);
    EXPECT_LE(fast.exec.cycles, vis.exec.cycles);
}

TEST(Experiment, ExtraKernelsRegisteredButNotInPaperSet)
{
    EXPECT_EQ(allBenchmarks().size(), 18u);
    EXPECT_EQ(paperBenchmarks().size(), 12u);
    EXPECT_EQ(findBenchmark("sepconv").category, Category::ImageKernel);
    EXPECT_TRUE(findBenchmark("erode").hasPrefetchVariant);
}

TEST(Report, BarNormalization)
{
    sim::RunResult r;
    r.exec.cycles = 500;
    r.exec.busy = 250;
    r.exec.fuStall = 100;
    r.exec.memL1Hit = 100;
    r.exec.memL1Miss = 50;
    const BreakdownBar bar = makeBar("x", r, 1000.0);
    EXPECT_DOUBLE_EQ(bar.total, 50.0);
    EXPECT_DOUBLE_EQ(bar.busy, 25.0);
    EXPECT_DOUBLE_EQ(bar.memL1Miss, 5.0);
    EXPECT_EQ(speedupStr(1000, 500), "2.00X");
    const std::string s = renderBars("t", {bar});
    EXPECT_NE(s.find("50.0"), std::string::npos);
}

TEST(Experiment, ComponentsSumToTotalOnRealWorkload)
{
    const auto r = runSmall(Variant::Scalar, sim::inOrder4Way());
    const double sum = r.exec.busy + r.exec.fuStall + r.exec.memL1Hit +
                       r.exec.memL1Miss;
    EXPECT_NEAR(sum, double(r.exec.cycles), double(r.exec.cycles) * 0.01);
}

// ---- strict env-toggle parsing ---------------------------------------
//
// A typo in an MSIM_* toggle must fail loudly, never silently take the
// default path: a user who set MSIM_EVENT_SKIP=of believes skipping is
// off, and any measurement made under that belief is garbage.  The
// death tests run in the re-exec'd child ("threadsafe" style), so the
// setenv inside the statement lands before the toggle's cached parse.

TEST(EnvToggles, AcceptedSpellingsParse)
{
    setenv("MSIM_TEST_TOGGLE", "off", 1);
    EXPECT_FALSE(envBool("MSIM_TEST_TOGGLE", true));
    setenv("MSIM_TEST_TOGGLE", "ON", 1);
    EXPECT_TRUE(envBool("MSIM_TEST_TOGGLE", false));
    setenv("MSIM_TEST_TOGGLE", "0", 1);
    EXPECT_FALSE(envBool("MSIM_TEST_TOGGLE", true));
    setenv("MSIM_TEST_TOGGLE", "1", 1);
    EXPECT_TRUE(envBool("MSIM_TEST_TOGGLE", false));
    setenv("MSIM_TEST_TOGGLE", "False", 1);
    EXPECT_FALSE(envBool("MSIM_TEST_TOGGLE", true));
    setenv("MSIM_TEST_TOGGLE", "true", 1);
    EXPECT_TRUE(envBool("MSIM_TEST_TOGGLE", false));
    setenv("MSIM_TEST_TOGGLE", "", 1);
    EXPECT_TRUE(envBool("MSIM_TEST_TOGGLE", true));
    unsetenv("MSIM_TEST_TOGGLE");
    EXPECT_FALSE(envBool("MSIM_TEST_TOGGLE", false));
}

TEST(EnvTogglesDeathTest, UnrecognizedEnvBoolValueIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        ([] {
            setenv("MSIM_TEST_TOGGLE", "of", 1);
            envBool("MSIM_TEST_TOGGLE", true);
        }()),
        testing::ExitedWithCode(1), "not recognized");
}

TEST(EnvTogglesDeathTest, UnrecognizedEventSkipValueIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        ([] {
            setenv("MSIM_EVENT_SKIP", "of", 1);
            cpu::CoreConfig::defaultEventSkip();
        }()),
        testing::ExitedWithCode(1), "MSIM_EVENT_SKIP.*not recognized");
}

TEST(EnvTogglesDeathTest, UnrecognizedLiveJobsValueIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        ([] {
            setenv("MSIM_LIVE_JOBS", "yes please", 1);
            const std::vector<Job> jobs = {
                {"addition", Variant::Scalar, sim::outOfOrder4Way()}};
            runJobs(jobs, 1, JobMode::Auto);
        }()),
        testing::ExitedWithCode(1), "MSIM_LIVE_JOBS.*not recognized");
}

TEST(EnvTogglesDeathTest, UnrecognizedSimdLevelIsFatal)
{
    testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        ([] {
            setenv("MSIM_SIMD", "avx512", 1);
            simd::activeLevel();
        }()),
        testing::ExitedWithCode(1), "MSIM_SIMD.*not recognized");
}

} // namespace
} // namespace msim::core
