# Empty compiler generated dependencies file for bench_ablation_isa.
# This may be replaced when dependencies are built.
