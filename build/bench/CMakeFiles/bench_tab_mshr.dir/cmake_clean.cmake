file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_mshr.dir/bench_tab_mshr.cpp.o"
  "CMakeFiles/bench_tab_mshr.dir/bench_tab_mshr.cpp.o.d"
  "bench_tab_mshr"
  "bench_tab_mshr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_mshr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
