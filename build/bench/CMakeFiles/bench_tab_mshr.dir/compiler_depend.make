# Empty compiler generated dependencies file for bench_tab_mshr.
# This may be replaced when dependencies are built.
