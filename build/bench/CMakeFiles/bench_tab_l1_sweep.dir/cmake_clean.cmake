file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_l1_sweep.dir/bench_tab_l1_sweep.cpp.o"
  "CMakeFiles/bench_tab_l1_sweep.dir/bench_tab_l1_sweep.cpp.o.d"
  "bench_tab_l1_sweep"
  "bench_tab_l1_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_l1_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
