# Empty dependencies file for bench_tab_l1_sweep.
# This may be replaced when dependencies are built.
