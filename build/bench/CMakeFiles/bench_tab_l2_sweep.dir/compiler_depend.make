# Empty compiler generated dependencies file for bench_tab_l2_sweep.
# This may be replaced when dependencies are built.
