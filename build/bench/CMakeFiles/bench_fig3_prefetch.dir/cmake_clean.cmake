file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_prefetch.dir/bench_fig3_prefetch.cpp.o"
  "CMakeFiles/bench_fig3_prefetch.dir/bench_fig3_prefetch.cpp.o.d"
  "bench_fig3_prefetch"
  "bench_fig3_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
