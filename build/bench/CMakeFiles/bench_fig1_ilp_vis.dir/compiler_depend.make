# Empty compiler generated dependencies file for bench_fig1_ilp_vis.
# This may be replaced when dependencies are built.
