file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_ilp_vis.dir/bench_fig1_ilp_vis.cpp.o"
  "CMakeFiles/bench_fig1_ilp_vis.dir/bench_fig1_ilp_vis.cpp.o.d"
  "bench_fig1_ilp_vis"
  "bench_fig1_ilp_vis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ilp_vis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
