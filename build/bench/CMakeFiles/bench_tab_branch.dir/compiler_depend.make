# Empty compiler generated dependencies file for bench_tab_branch.
# This may be replaced when dependencies are built.
