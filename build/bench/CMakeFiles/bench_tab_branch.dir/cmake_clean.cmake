file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_branch.dir/bench_tab_branch.cpp.o"
  "CMakeFiles/bench_tab_branch.dir/bench_tab_branch.cpp.o.d"
  "bench_tab_branch"
  "bench_tab_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
