file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiproc.dir/bench_ext_multiproc.cpp.o"
  "CMakeFiles/bench_ext_multiproc.dir/bench_ext_multiproc.cpp.o.d"
  "bench_ext_multiproc"
  "bench_ext_multiproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
