# Empty compiler generated dependencies file for bench_ext_multiproc.
# This may be replaced when dependencies are built.
