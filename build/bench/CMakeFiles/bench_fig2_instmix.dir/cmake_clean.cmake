file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_instmix.dir/bench_fig2_instmix.cpp.o"
  "CMakeFiles/bench_fig2_instmix.dir/bench_fig2_instmix.cpp.o.d"
  "bench_fig2_instmix"
  "bench_fig2_instmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_instmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
