# Empty dependencies file for bench_fig2_instmix.
# This may be replaced when dependencies are built.
