# Empty compiler generated dependencies file for test_traced.
# This may be replaced when dependencies are built.
