file(REMOVE_RECURSE
  "CMakeFiles/test_traced.dir/test_traced.cc.o"
  "CMakeFiles/test_traced.dir/test_traced.cc.o.d"
  "test_traced"
  "test_traced.pdb"
  "test_traced[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
