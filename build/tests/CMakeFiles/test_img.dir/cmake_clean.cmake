file(REMOVE_RECURSE
  "CMakeFiles/test_img.dir/test_img.cc.o"
  "CMakeFiles/test_img.dir/test_img.cc.o.d"
  "test_img"
  "test_img.pdb"
  "test_img[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_img.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
