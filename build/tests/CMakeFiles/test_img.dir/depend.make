# Empty dependencies file for test_img.
# This may be replaced when dependencies are built.
