# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_img[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vis[1]_include.cmake")
include("/root/repo/build/tests/test_prog[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_jpeg[1]_include.cmake")
include("/root/repo/build/tests/test_mpeg[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_traced[1]_include.cmake")
include("/root/repo/build/tests/test_paper[1]_include.cmake")
include("/root/repo/build/tests/test_multicore[1]_include.cmake")
