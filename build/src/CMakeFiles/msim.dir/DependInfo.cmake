
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/msim.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/msim.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/msim.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/msim.dir/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/CMakeFiles/msim.dir/common/table.cc.o" "gcc" "src/CMakeFiles/msim.dir/common/table.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/msim.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/msim.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/msim.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/msim.dir/core/registry.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/msim.dir/core/report.cc.o" "gcc" "src/CMakeFiles/msim.dir/core/report.cc.o.d"
  "/root/repo/src/cpu/accounting.cc" "src/CMakeFiles/msim.dir/cpu/accounting.cc.o" "gcc" "src/CMakeFiles/msim.dir/cpu/accounting.cc.o.d"
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/msim.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/msim.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/msim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/msim.dir/cpu/core.cc.o.d"
  "/root/repo/src/cpu/fu_pool.cc" "src/CMakeFiles/msim.dir/cpu/fu_pool.cc.o" "gcc" "src/CMakeFiles/msim.dir/cpu/fu_pool.cc.o.d"
  "/root/repo/src/img/image.cc" "src/CMakeFiles/msim.dir/img/image.cc.o" "gcc" "src/CMakeFiles/msim.dir/img/image.cc.o.d"
  "/root/repo/src/img/ppm.cc" "src/CMakeFiles/msim.dir/img/ppm.cc.o" "gcc" "src/CMakeFiles/msim.dir/img/ppm.cc.o.d"
  "/root/repo/src/img/synth.cc" "src/CMakeFiles/msim.dir/img/synth.cc.o" "gcc" "src/CMakeFiles/msim.dir/img/synth.cc.o.d"
  "/root/repo/src/isa/inst.cc" "src/CMakeFiles/msim.dir/isa/inst.cc.o" "gcc" "src/CMakeFiles/msim.dir/isa/inst.cc.o.d"
  "/root/repo/src/isa/timing.cc" "src/CMakeFiles/msim.dir/isa/timing.cc.o" "gcc" "src/CMakeFiles/msim.dir/isa/timing.cc.o.d"
  "/root/repo/src/jpeg/codec.cc" "src/CMakeFiles/msim.dir/jpeg/codec.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/codec.cc.o.d"
  "/root/repo/src/jpeg/color.cc" "src/CMakeFiles/msim.dir/jpeg/color.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/color.cc.o.d"
  "/root/repo/src/jpeg/dct.cc" "src/CMakeFiles/msim.dir/jpeg/dct.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/dct.cc.o.d"
  "/root/repo/src/jpeg/huffman.cc" "src/CMakeFiles/msim.dir/jpeg/huffman.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/huffman.cc.o.d"
  "/root/repo/src/jpeg/quant.cc" "src/CMakeFiles/msim.dir/jpeg/quant.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/quant.cc.o.d"
  "/root/repo/src/jpeg/traced.cc" "src/CMakeFiles/msim.dir/jpeg/traced.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/traced.cc.o.d"
  "/root/repo/src/jpeg/traced_xform.cc" "src/CMakeFiles/msim.dir/jpeg/traced_xform.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/traced_xform.cc.o.d"
  "/root/repo/src/jpeg/zigzag.cc" "src/CMakeFiles/msim.dir/jpeg/zigzag.cc.o" "gcc" "src/CMakeFiles/msim.dir/jpeg/zigzag.cc.o.d"
  "/root/repo/src/kernels/addition.cc" "src/CMakeFiles/msim.dir/kernels/addition.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/addition.cc.o.d"
  "/root/repo/src/kernels/blend.cc" "src/CMakeFiles/msim.dir/kernels/blend.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/blend.cc.o.d"
  "/root/repo/src/kernels/common.cc" "src/CMakeFiles/msim.dir/kernels/common.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/common.cc.o.d"
  "/root/repo/src/kernels/conv.cc" "src/CMakeFiles/msim.dir/kernels/conv.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/conv.cc.o.d"
  "/root/repo/src/kernels/copy_invert.cc" "src/CMakeFiles/msim.dir/kernels/copy_invert.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/copy_invert.cc.o.d"
  "/root/repo/src/kernels/dotprod.cc" "src/CMakeFiles/msim.dir/kernels/dotprod.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/dotprod.cc.o.d"
  "/root/repo/src/kernels/erode.cc" "src/CMakeFiles/msim.dir/kernels/erode.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/erode.cc.o.d"
  "/root/repo/src/kernels/lookup.cc" "src/CMakeFiles/msim.dir/kernels/lookup.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/lookup.cc.o.d"
  "/root/repo/src/kernels/scaling.cc" "src/CMakeFiles/msim.dir/kernels/scaling.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/scaling.cc.o.d"
  "/root/repo/src/kernels/sepconv.cc" "src/CMakeFiles/msim.dir/kernels/sepconv.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/sepconv.cc.o.d"
  "/root/repo/src/kernels/thresh.cc" "src/CMakeFiles/msim.dir/kernels/thresh.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/thresh.cc.o.d"
  "/root/repo/src/kernels/transpose.cc" "src/CMakeFiles/msim.dir/kernels/transpose.cc.o" "gcc" "src/CMakeFiles/msim.dir/kernels/transpose.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/msim.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/msim.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/CMakeFiles/msim.dir/mem/hierarchy.cc.o" "gcc" "src/CMakeFiles/msim.dir/mem/hierarchy.cc.o.d"
  "/root/repo/src/mpeg/codec.cc" "src/CMakeFiles/msim.dir/mpeg/codec.cc.o" "gcc" "src/CMakeFiles/msim.dir/mpeg/codec.cc.o.d"
  "/root/repo/src/mpeg/motion.cc" "src/CMakeFiles/msim.dir/mpeg/motion.cc.o" "gcc" "src/CMakeFiles/msim.dir/mpeg/motion.cc.o.d"
  "/root/repo/src/mpeg/traced.cc" "src/CMakeFiles/msim.dir/mpeg/traced.cc.o" "gcc" "src/CMakeFiles/msim.dir/mpeg/traced.cc.o.d"
  "/root/repo/src/prog/arena.cc" "src/CMakeFiles/msim.dir/prog/arena.cc.o" "gcc" "src/CMakeFiles/msim.dir/prog/arena.cc.o.d"
  "/root/repo/src/prog/trace_builder.cc" "src/CMakeFiles/msim.dir/prog/trace_builder.cc.o" "gcc" "src/CMakeFiles/msim.dir/prog/trace_builder.cc.o.d"
  "/root/repo/src/prog/variant.cc" "src/CMakeFiles/msim.dir/prog/variant.cc.o" "gcc" "src/CMakeFiles/msim.dir/prog/variant.cc.o.d"
  "/root/repo/src/sim/machine.cc" "src/CMakeFiles/msim.dir/sim/machine.cc.o" "gcc" "src/CMakeFiles/msim.dir/sim/machine.cc.o.d"
  "/root/repo/src/sim/multicore.cc" "src/CMakeFiles/msim.dir/sim/multicore.cc.o" "gcc" "src/CMakeFiles/msim.dir/sim/multicore.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/CMakeFiles/msim.dir/sim/runner.cc.o" "gcc" "src/CMakeFiles/msim.dir/sim/runner.cc.o.d"
  "/root/repo/src/vis/gsr.cc" "src/CMakeFiles/msim.dir/vis/gsr.cc.o" "gcc" "src/CMakeFiles/msim.dir/vis/gsr.cc.o.d"
  "/root/repo/src/vis/ops.cc" "src/CMakeFiles/msim.dir/vis/ops.cc.o" "gcc" "src/CMakeFiles/msim.dir/vis/ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
